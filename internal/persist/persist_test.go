package persist

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func openTemp(t *testing.T, opts Options) (*DB, string) {
	t.Helper()
	dir := t.TempDir()
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return db, dir
}

func TestPutGetDelete(t *testing.T) {
	db, _ := openTemp(t, Options{})
	defer db.Close()
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, ok := db.Get([]byte("k"))
	if !ok || string(v) != "v" {
		t.Fatalf("got %q ok=%v", v, ok)
	}
	if err := db.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Get([]byte("k")); ok {
		t.Fatal("deleted key present")
	}
	if db.Len() != 0 {
		t.Fatalf("len = %d", db.Len())
	}
}

func TestReopenReplaysWAL(t *testing.T) {
	db, dir := openTemp(t, Options{})
	for i := 0; i < 50; i++ {
		db.Put([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	db.Delete([]byte("k10"))
	db.Close()

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Len() != 49 {
		t.Fatalf("len after reopen = %d", db2.Len())
	}
	v, ok := db2.Get([]byte("k7"))
	if !ok || string(v) != "v7" {
		t.Fatalf("k7 = %q ok=%v", v, ok)
	}
	if _, ok := db2.Get([]byte("k10")); ok {
		t.Fatal("deleted key resurrected")
	}
}

func TestCompactionAndReopen(t *testing.T) {
	db, dir := openTemp(t, Options{})
	for i := 0; i < 30; i++ {
		db.Put([]byte(fmt.Sprintf("k%d", i)), bytes.Repeat([]byte{byte(i)}, 100))
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if db.Compactions() != 1 {
		t.Fatalf("compactions = %d", db.Compactions())
	}
	// Post-compaction writes land in the fresh WAL.
	db.Put([]byte("after"), []byte("compact"))
	db.Close()

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Len() != 31 {
		t.Fatalf("len = %d", db2.Len())
	}
	v, _ := db2.Get([]byte("after"))
	if string(v) != "compact" {
		t.Fatalf("after = %q", v)
	}
}

func TestAutoCompaction(t *testing.T) {
	db, _ := openTemp(t, Options{CompactThreshold: 10})
	defer db.Close()
	for i := 0; i < 25; i++ {
		db.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	if db.Compactions() < 2 {
		t.Fatalf("compactions = %d, want >= 2", db.Compactions())
	}
}

func TestTornWALTailDiscarded(t *testing.T) {
	db, dir := openTemp(t, Options{})
	db.Put([]byte("good"), []byte("1"))
	db.Put([]byte("alsogood"), []byte("2"))
	db.Close()

	// Simulate a crash mid-append: chop bytes off the WAL tail.
	walPath := filepath.Join(dir, walName)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, ok := db2.Get([]byte("good")); !ok {
		t.Fatal("intact record lost")
	}
	if _, ok := db2.Get([]byte("alsogood")); ok {
		t.Fatal("torn record replayed")
	}
}

func TestSyncMode(t *testing.T) {
	db, dir := openTemp(t, Options{Sync: true})
	if err := db.Put([]byte("durable"), []byte("yes")); err != nil {
		t.Fatal(err)
	}
	db.Close()
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if v, ok := db2.Get([]byte("durable")); !ok || string(v) != "yes" {
		t.Fatalf("got %q ok=%v", v, ok)
	}
}

func TestClosedOperations(t *testing.T) {
	db, _ := openTemp(t, Options{})
	db.Close()
	if err := db.Put([]byte("k"), []byte("v")); err != ErrClosed {
		t.Fatalf("put after close: %v", err)
	}
	if err := db.Compact(); err != ErrClosed {
		t.Fatalf("compact after close: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestDump(t *testing.T) {
	db, _ := openTemp(t, Options{})
	defer db.Close()
	db.Put([]byte("a"), []byte("1"))
	db.Put([]byte("b"), []byte("2"))
	d := db.Dump()
	if len(d) != 2 || string(d["a"]) != "1" {
		t.Fatalf("dump = %v", d)
	}
	// Dump is a copy.
	d["a"][0] = 'X'
	if v, _ := db.Get([]byte("a")); string(v) != "1" {
		t.Fatal("dump aliases internal state")
	}
}

func TestQuickRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	model := map[string]string{}
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := func(key, value []byte, del bool) bool {
		if len(key) == 0 {
			return true
		}
		if del {
			db.Delete(key)
			delete(model, string(key))
		} else {
			db.Put(key, value)
			model[string(key)] = string(value)
		}
		got, ok := db.Get(key)
		want, exists := model[string(key)]
		if exists != ok {
			return false
		}
		return !ok || string(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	db.Close()
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Len() != len(model) {
		t.Fatalf("reopen len = %d, model = %d", db2.Len(), len(model))
	}
	for k, v := range model {
		got, ok := db2.Get([]byte(k))
		if !ok || string(got) != v {
			t.Fatalf("key %q = %q ok=%v, want %q", k, got, ok, v)
		}
	}
}
