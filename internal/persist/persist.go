// Package persist provides minidb, a small durable key-value store used as
// the stand-in for the paper's RocksDB persistence backend (§3.5: "We have
// implemented such a design using RocksDB, where all updates are
// synchronously written to the persistent database by a background
// thread").
//
// minidb is a write-ahead-logged memtable with snapshot compaction:
// updates append to a CRC-protected log (optionally fsynced), Get serves
// from memory, and Compact atomically rewrites the snapshot and truncates
// the log. Open replays snapshot + log, discarding a torn tail.
package persist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Errors.
var (
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("persist: database closed")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Record opcodes.
const (
	opPut    byte = 1
	opDelete byte = 2
)

const (
	walName  = "wal.log"
	snapName = "snapshot.db"
	tmpName  = "snapshot.tmp"
)

// Options configure a DB.
type Options struct {
	// Sync fsyncs the WAL after every update (the paper's configuration
	// writes synchronously; disable for tests that don't measure
	// durability).
	Sync bool
	// CompactThreshold triggers automatic compaction after this many WAL
	// records (0 = never automatic).
	CompactThreshold int
}

// DB is a durable key-value store.
type DB struct {
	dir  string
	opts Options

	mu       sync.RWMutex
	mem      map[string][]byte
	wal      *os.File
	walW     *bufio.Writer
	walCount int
	closed   bool
	compacts int
}

// Open loads (or creates) a database in dir.
func Open(dir string, opts Options) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	db := &DB{dir: dir, opts: opts, mem: make(map[string][]byte)}
	if err := db.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := db.replayWAL(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	db.wal = f
	db.walW = bufio.NewWriter(f)
	return db, nil
}

// record layout: op(1) klen(4) vlen(4) key value crc(4)
func appendRecord(w io.Writer, op byte, key, value []byte) error {
	var hdr [9]byte
	hdr[0] = op
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(value)))
	crc := crc32.Checksum(hdr[:], crcTable)
	crc = crc32.Update(crc, crcTable, key)
	crc = crc32.Update(crc, crcTable, value)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(key); err != nil {
		return err
	}
	if _, err := w.Write(value); err != nil {
		return err
	}
	_, err := w.Write(tail[:])
	return err
}

// readRecord returns io.EOF cleanly at end, or an error for torn records.
func readRecord(r *bufio.Reader) (op byte, key, value []byte, err error) {
	var hdr [9]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, nil, err
	}
	op = hdr[0]
	kl := binary.LittleEndian.Uint32(hdr[1:5])
	vl := binary.LittleEndian.Uint32(hdr[5:9])
	if kl > 1<<20 || vl > 64<<20 {
		return 0, nil, nil, fmt.Errorf("persist: implausible record (%d,%d)", kl, vl)
	}
	key = make([]byte, kl)
	value = make([]byte, vl)
	if _, err = io.ReadFull(r, key); err != nil {
		return 0, nil, nil, err
	}
	if _, err = io.ReadFull(r, value); err != nil {
		return 0, nil, nil, err
	}
	var tail [4]byte
	if _, err = io.ReadFull(r, tail[:]); err != nil {
		return 0, nil, nil, err
	}
	want := crc32.Checksum(hdr[:], crcTable)
	want = crc32.Update(want, crcTable, key)
	want = crc32.Update(want, crcTable, value)
	if binary.LittleEndian.Uint32(tail[:]) != want {
		return 0, nil, nil, fmt.Errorf("persist: crc mismatch")
	}
	return op, key, value, nil
}

func (db *DB) loadSnapshot() error {
	f, err := os.Open(filepath.Join(db.dir, snapName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	for {
		op, key, value, err := readRecord(r)
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("persist: corrupt snapshot: %w", err)
		}
		if op == opPut {
			db.mem[string(key)] = value
		}
	}
}

func (db *DB) replayWAL() error {
	f, err := os.Open(filepath.Join(db.dir, walName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	for {
		op, key, value, err := readRecord(r)
		if err != nil {
			// EOF or torn tail (crash mid-append): stop replaying. Anything
			// before the tear was intact (CRC-checked).
			return nil
		}
		switch op {
		case opPut:
			db.mem[string(key)] = value
		case opDelete:
			delete(db.mem, string(key))
		}
		db.walCount++
	}
}

// Put durably stores value under key.
func (db *DB) Put(key, value []byte) error {
	return db.update(opPut, key, value)
}

// Delete durably removes key.
func (db *DB) Delete(key []byte) error {
	return db.update(opDelete, key, nil)
}

func (db *DB) update(op byte, key, value []byte) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if err := appendRecord(db.walW, op, key, value); err != nil {
		return err
	}
	if err := db.walW.Flush(); err != nil {
		return err
	}
	if db.opts.Sync {
		if err := db.wal.Sync(); err != nil {
			return err
		}
	}
	if op == opPut {
		db.mem[string(key)] = append([]byte(nil), value...)
	} else {
		delete(db.mem, string(key))
	}
	db.walCount++
	if db.opts.CompactThreshold > 0 && db.walCount >= db.opts.CompactThreshold {
		return db.compactLocked()
	}
	return nil
}

// Get returns the value for key.
func (db *DB) Get(key []byte) ([]byte, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	v, ok := db.mem[string(key)]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Len returns the number of live keys.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.mem)
}

// Compact writes a fresh snapshot and truncates the WAL. The snapshot is
// written to a temp file and renamed, so a crash never loses the previous
// snapshot.
func (db *DB) Compact() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	return db.compactLocked()
}

func (db *DB) compactLocked() error {
	tmp := filepath.Join(db.dir, tmpName)
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for k, v := range db.mem {
		if err := appendRecord(w, opPut, []byte(k), v); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(db.dir, snapName)); err != nil {
		return err
	}
	// Truncate the WAL now that its contents are in the snapshot.
	if err := db.wal.Close(); err != nil {
		return err
	}
	nf, err := os.OpenFile(filepath.Join(db.dir, walName), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	db.wal = nf
	db.walW = bufio.NewWriter(nf)
	db.walCount = 0
	db.compacts++
	return nil
}

// Compactions reports how many compactions have run.
func (db *DB) Compactions() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.compacts
}

// Dump copies the full contents (used to seed memory-node recovery from a
// persistent snapshot, the §3.5 alternative recovery path).
func (db *DB) Dump() map[string][]byte {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make(map[string][]byte, len(db.mem))
	for k, v := range db.mem {
		out[k] = append([]byte(nil), v...)
	}
	return out
}

// Close flushes and closes the database.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	if err := db.walW.Flush(); err != nil {
		return err
	}
	return db.wal.Close()
}
