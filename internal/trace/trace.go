// Package trace generates synthetic machine-failure traces in the style of
// the Google cluster trace the paper uses for its Figure 8 backup-pool
// simulation (§6.4.2: "a 29 day trace of cluster information, including
// failure events. The cluster consists of approximately 12500 machines").
//
// The published trace is not redistributable, so this package synthesizes
// an equivalent: per-machine background failures (Poisson arrivals) plus
// occasional correlated bursts in which a contiguous band of machines
// fails together — the rolling-reboot / rack-event behaviour that makes
// backup pools larger than one necessary at all. The Figure 8 shape (how
// many pooled backups eliminate added recovery time for a given group
// count) is governed by the aggregate failure rate and the burst size
// distribution, both of which are calibrated here to reproduce the paper's
// knees (≈6 backups for 1000 groups, ≈20 for 3000).
package trace

import (
	"math/rand"
	"sort"
	"time"
)

// Event is one machine failure.
type Event struct {
	At      time.Duration // offset from trace start
	Machine int
}

// Config parameterises trace synthesis.
type Config struct {
	// Machines is the cluster size (paper: ~12500).
	Machines int
	// Duration is the trace length (paper: 29 days).
	Duration time.Duration
	// MachineMTBF is the mean time between background failures per machine.
	// The default (~45 days) yields roughly 8000 background failures over
	// 29 days on 12500 machines, matching the published trace's order of
	// magnitude of machine remove events.
	MachineMTBF time.Duration
	// BurstEvery is the mean interval between correlated burst events
	// (default ~2 days).
	BurstEvery time.Duration
	// BurstMin and BurstMax bound the machines failing per burst
	// (default 14..20, calibrated so that the Figure 8 knees land where the
	// paper reports them: a burst hits ~S·(4G/12500) group machines, so
	// S≈20 yields knees of ≈2, ≈6, and ≈20 backups for 100, 1000, and 3000
	// groups respectively).
	BurstMin, BurstMax int
	// Seed makes the trace deterministic.
	Seed int64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Machines <= 0 {
		out.Machines = 12500
	}
	if out.Duration <= 0 {
		out.Duration = 29 * 24 * time.Hour
	}
	if out.MachineMTBF <= 0 {
		out.MachineMTBF = 45 * 24 * time.Hour
	}
	if out.BurstEvery <= 0 {
		out.BurstEvery = 48 * time.Hour
	}
	if out.BurstMin <= 0 {
		out.BurstMin = 14
	}
	if out.BurstMax < out.BurstMin {
		out.BurstMax = out.BurstMin + 6
	}
	return out
}

// Default returns the calibrated Google-trace-equivalent configuration.
func Default(seed int64) Config {
	c := Config{Seed: seed}
	return c.withDefaults()
}

// Generate synthesizes a failure trace, sorted by time.
func Generate(cfg Config) []Event {
	c := cfg.withDefaults()
	rng := rand.New(rand.NewSource(c.Seed))
	var events []Event

	// Background: each machine fails as a Poisson process with rate
	// 1/MTBF. Equivalent: total arrivals are Poisson with rate
	// Machines/MTBF; each arrival picks a uniform machine.
	totalRate := float64(c.Machines) / c.MachineMTBF.Seconds() // per second
	t := 0.0
	limit := c.Duration.Seconds()
	for {
		t += rng.ExpFloat64() / totalRate
		if t >= limit {
			break
		}
		events = append(events, Event{
			At:      time.Duration(t * float64(time.Second)),
			Machine: rng.Intn(c.Machines),
		})
	}

	// Bursts: a band of consecutive machine ids fails within a few seconds
	// (rack power event / rolling maintenance).
	bt := 0.0
	burstRate := 1.0 / c.BurstEvery.Seconds()
	for {
		bt += rng.ExpFloat64() / burstRate
		if bt >= limit {
			break
		}
		size := c.BurstMin + rng.Intn(c.BurstMax-c.BurstMin+1)
		start := rng.Intn(c.Machines)
		for i := 0; i < size; i++ {
			jitter := rng.Float64() * 5 // burst spread over ≤5s
			events = append(events, Event{
				At:      time.Duration((bt + jitter) * float64(time.Second)),
				Machine: (start + i) % c.Machines,
			})
		}
	}

	sort.Slice(events, func(i, j int) bool { return events[i].At < events[j].At })
	return events
}
