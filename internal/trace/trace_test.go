package trace

import (
	"testing"
	"time"
)

func TestGenerateSortedAndBounded(t *testing.T) {
	cfg := Default(1)
	events := Generate(cfg)
	if len(events) == 0 {
		t.Fatal("empty trace")
	}
	for i, e := range events {
		if e.Machine < 0 || e.Machine >= cfg.Machines {
			t.Fatalf("event %d: machine %d out of range", i, e.Machine)
		}
		if e.At < 0 || e.At > cfg.Duration+10*time.Second {
			t.Fatalf("event %d: time %v out of range", i, e.At)
		}
		if i > 0 && e.At < events[i-1].At {
			t.Fatalf("events not sorted at %d", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Default(42))
	b := Generate(Default(42))
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs", i)
		}
	}
	c := Generate(Default(43))
	if len(a) == len(c) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestAggregateFailureRateCalibration(t *testing.T) {
	// ~12500 machines at 45-day MTBF over 29 days ≈ 8000 background
	// failures, plus ~14 bursts of 50-110 → total roughly 8k-10k events.
	events := Generate(Default(7))
	if len(events) < 5000 || len(events) > 15000 {
		t.Fatalf("trace has %d events, expected 5k-15k", len(events))
	}
}

func TestBurstsPresent(t *testing.T) {
	// There must exist 10-second windows with dozens of failures (bursts),
	// which is what makes backup pools > 1 necessary.
	events := Generate(Default(3))
	maxWindow := 0
	start := 0
	for i := range events {
		for events[i].At-events[start].At > 10*time.Second {
			start++
		}
		if w := i - start + 1; w > maxWindow {
			maxWindow = w
		}
	}
	if maxWindow < 12 {
		t.Fatalf("largest 10s failure window has %d events; bursts missing", maxWindow)
	}
}

func TestConfigOverrides(t *testing.T) {
	cfg := Config{Machines: 100, Duration: time.Hour, MachineMTBF: time.Hour, Seed: 5}
	events := Generate(cfg)
	// ~100 background failures expected, plus possibly one burst.
	if len(events) < 30 || len(events) > 400 {
		t.Fatalf("events = %d", len(events))
	}
	for _, e := range events {
		if e.Machine >= 100 {
			t.Fatalf("machine %d out of configured range", e.Machine)
		}
	}
}
