package sift

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/repro/sift/internal/kv"
	"github.com/repro/sift/internal/memnode"
	"github.com/repro/sift/internal/rdma"
	"github.com/repro/sift/internal/repmem"
)

// --- Online reconfiguration suite --------------------------------------
//
// The repmem-level tests (internal/repmem/reconfig_test.go) exercise the
// state-transfer pipeline and epoch commit against raw machines; the tests
// here drive the same machinery through the public cluster API under real
// client traffic, and assert the end-to-end properties the design argues
// for: linearizable histories across a rolling replacement of every memory
// node, byte-identity afterwards, and a removed-but-still-running node that
// can neither serve a backup read nor anchor a stale-config takeover.

// observerDial opens read-only connections from a synthetic endpoint so a
// test can build repmem Views over the live fabric without revoking the
// coordinator's exclusive write access.
func observerDial(cl *Cluster, from string) repmem.Dialer {
	return func(node string) (rdma.Verbs, error) {
		return cl.network.Dial(from, node, rdma.DialOpts{
			ReadOnly:   []rdma.RegionID{memnode.ReplRegionID},
			OpDeadline: cl.cfg.OpDeadline,
		})
	}
}

// readAdminWord reads one 8-byte admin-region word off a node.
func readAdminWord(t *testing.T, cl *Cluster, node string, offset uint64) uint64 {
	t.Helper()
	c, err := cl.network.Dial("probe", node, rdma.DialOpts{OpDeadline: cl.cfg.OpDeadline})
	if err != nil {
		t.Fatalf("dial %s: %v", node, err)
	}
	defer c.Close()
	var buf [8]byte
	if err := c.Read(memnode.AdminRegionID, offset, buf[:]); err != nil {
		t.Fatalf("read admin word %d on %s: %v", offset, node, err)
	}
	var w uint64
	for i := 7; i >= 0; i-- {
		w = w<<8 | uint64(buf[i])
	}
	return w
}

// readAdminEpoch reads a node's committed config-epoch word (high half of
// the packed word at AdminEpochOffset).
func readAdminEpoch(t *testing.T, cl *Cluster, node string) uint32 {
	t.Helper()
	return uint32(readAdminWord(t, cl, node, memnode.AdminEpochOffset) >> 16)
}

// eventsContain reports whether the control-plane event ring holds an
// event whose rendering contains substr.
func eventsContain(cl *Cluster, substr string) bool {
	var b strings.Builder
	cl.Events().Dump(&b)
	return strings.Contains(b.String(), substr)
}

// awaitConfigEpoch polls until a serving coordinator reports config epoch
// want. ConfigEpoch is 0 between a teardown and the next promotion, and a
// reconfiguration may race a coordinator failover, so epoch assertions
// must allow the dust to settle.
func awaitConfigEpoch(t *testing.T, cl *Cluster, want uint32) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		if got := cl.ConfigEpoch(); got == want {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("config epoch %d, want %d", got, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// replicasByteIdentical compares every member's replicated region from the
// direct-zone base up (WAL area excluded: it is pooled, not mirrored).
// Only meaningful under full replication, where replicas must converge.
func replicasByteIdentical(cl *Cluster) bool {
	layout := cl.mcfg.Layout()
	var first []byte
	for _, name := range cl.MemoryNodes() {
		snap := cl.network.Node(name).Region(memnode.ReplRegionID).Snapshot()[layout.DirectBase():]
		if first == nil {
			first = snap
		} else if !bytes.Equal(first, snap) {
			return false
		}
	}
	return true
}

// rollEveryMemoryNode replaces each of the cluster's original memory nodes
// in turn under whatever traffic is already running, bounding how long each
// replacement may take and probing that the cluster keeps serving right
// after each cutover. Returns the replacement names.
func rollEveryMemoryNode(t *testing.T, cl *Cluster) []string {
	t.Helper()
	victims := cl.MemoryNodes()
	probe := cl.Client()
	var added []string
	for i, victim := range victims {
		start := time.Now()
		name, err := cl.ReplaceMemoryNode(victim, "")
		if err != nil {
			t.Errorf("replace %s: %v", victim, err)
			return added
		}
		took := time.Since(start)
		if took > 15*time.Second {
			t.Errorf("replace %s took %v; reconfiguration must not stall the cluster", victim, took)
		}
		added = append(added, name)
		// Service-continuity probe: the store must answer promptly in the
		// new configuration — bounded degradation, not an outage.
		k := []byte(fmt.Sprintf("roll-probe-%d", i))
		pstart := time.Now()
		if err := probe.Put(k, []byte(victim)); err != nil {
			t.Errorf("probe put after replacing %s: %v", victim, err)
		}
		if v, err := probe.Get(k); err != nil || string(v) != victim {
			t.Errorf("probe get after replacing %s: %q, %v", victim, v, err)
		}
		if d := time.Since(pstart); d > 5*time.Second {
			t.Errorf("probe round-trip after replacing %s took %v", victim, d)
		}
		t.Logf("replaced %s -> %s in %v", victim, name, took)
		time.Sleep(50 * time.Millisecond)
	}
	return added
}

// TestReconfigRollingReplacement is the headline scenario: every memory
// node of a fully replicated group is live-replaced, one after another,
// while eight concurrent clients run a mixed workload. The recorded
// histories must linearize, the config epoch must have advanced once per
// replacement, and a full scrub over the final member set must find the
// replicas byte-identical.
func TestReconfigRollingReplacement(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run in -short mode")
	}
	cl := newTestCluster(t, smallConfig())
	dumpEventsOnFailure(t, cl)
	if err := cl.WaitForCoordinator(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	original := cl.MemoryNodes()

	runLinearizeClients(t, cl, 8, func() {
		time.Sleep(100 * time.Millisecond)
		rollEveryMemoryNode(t, cl)
		time.Sleep(100 * time.Millisecond)
	})

	awaitConfigEpoch(t, cl, uint32(1+len(original)))
	now := cl.MemoryNodes()
	for _, old := range original {
		for _, cur := range now {
			if cur == old {
				t.Fatalf("original node %s still in member set %v", old, now)
			}
		}
	}
	// Post-replacement integrity: scrub until a pass is clean and the
	// replicas agree byte for byte.
	deadline := time.Now().Add(20 * time.Second)
	for {
		rep, err := cl.ScrubNow()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Corrupt == 0 && rep.Unrepaired == 0 && replicasByteIdentical(cl) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas never converged after rolling replacement; last scrub %+v", rep)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestReconfigRollingReplacementEC repeats the rolling replacement with the
// main memory erasure-coded: each replacement must reconstruct the departed
// node's chunk content onto the newcomer (same member-list position, so the
// positional chunk layout is preserved) without losing a client write.
func TestReconfigRollingReplacementEC(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run in -short mode")
	}
	cfg := smallConfig()
	cfg.ErasureCoding = true
	cl := newTestCluster(t, cfg)
	dumpEventsOnFailure(t, cl)
	if err := cl.WaitForCoordinator(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	original := cl.MemoryNodes()

	runLinearizeClients(t, cl, 8, func() {
		time.Sleep(100 * time.Millisecond)
		rollEveryMemoryNode(t, cl)
		time.Sleep(100 * time.Millisecond)
	})

	awaitConfigEpoch(t, cl, uint32(1+len(original)))
	// EC replicas are not identical (each holds a distinct chunk); the
	// checksum strip is the arbiter instead — a clean scrub means every
	// chunk on every node verifies.
	rep, err := cl.ScrubNow()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt != 0 || rep.Unrepaired != 0 {
		t.Fatalf("scrub after EC rolling replacement found damage: %+v", rep)
	}
}

// TestReconfigAddRemovePlain grows a fully replicated group by one node and
// then shrinks it back, checking data availability, epoch advancement and
// scrub cleanliness at each step, plus the API's validation errors.
func TestReconfigAddRemovePlain(t *testing.T) {
	cl := newTestCluster(t, smallConfig())
	dumpEventsOnFailure(t, cl)
	if err := cl.WaitForCoordinator(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	c := cl.Client()
	const keys = 48
	for i := 0; i < keys; i++ {
		if err := c.Put([]byte(fmt.Sprintf("grow-%02d", i)), []byte(fmt.Sprintf("v-%02d", i))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}

	added, err := cl.AddMemoryNode("")
	if err != nil {
		t.Fatalf("add: %v", err)
	}
	if n := len(cl.MemoryNodes()); n != 4 {
		t.Fatalf("member count %d after add, want 4", n)
	}
	awaitConfigEpoch(t, cl, 2)
	for i := 0; i < keys; i++ {
		v, err := c.Get([]byte(fmt.Sprintf("grow-%02d", i)))
		if err != nil || string(v) != fmt.Sprintf("v-%02d", i) {
			t.Fatalf("get %d after add: %q, %v", i, v, err)
		}
	}
	// The joiner must hold the same bytes as the veterans.
	deadline := time.Now().Add(10 * time.Second)
	for !replicasByteIdentical(cl) {
		if time.Now().After(deadline) {
			t.Fatal("joined node never reached byte-identity")
		}
		if _, err := cl.ScrubNow(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Error paths before the shrink.
	if _, err := cl.AddMemoryNode(added); err == nil {
		t.Fatal("adding an existing member succeeded")
	}
	if err := cl.RemoveMemoryNode("no-such-node"); err == nil {
		t.Fatal("removing an unknown node succeeded")
	}

	if err := cl.RemoveMemoryNode("mem1"); err != nil {
		t.Fatalf("remove: %v", err)
	}
	now := cl.MemoryNodes()
	if len(now) != 3 {
		t.Fatalf("member count %d after remove, want 3", len(now))
	}
	for _, m := range now {
		if m == "mem1" {
			t.Fatalf("mem1 still a member after removal: %v", now)
		}
	}
	awaitConfigEpoch(t, cl, 3)
	for i := 0; i < keys; i++ {
		v, err := c.Get([]byte(fmt.Sprintf("grow-%02d", i)))
		if err != nil || string(v) != fmt.Sprintf("v-%02d", i) {
			t.Fatalf("get %d after remove: %q, %v", i, v, err)
		}
	}
	// The removed node's machine is still on the fabric, tombstoned with
	// the epoch that removed it.
	if got, want := readAdminWord(t, cl, "mem1", memnode.AdminRetiredOffset), uint64(cl.ConfigEpoch()); got != want {
		t.Fatalf("removed node retired word %d, want tombstone %d", got, want)
	}
}

// TestReconfigRestripeEC moves an erasure-coded group onto an entirely
// fresh member set (EC restripes are all-or-nothing: chunk placement is
// positional, so retained nodes cannot keep their contents) and checks the
// one-node add/remove verbs are refused under EC.
func TestReconfigRestripeEC(t *testing.T) {
	cfg := smallConfig()
	cfg.ErasureCoding = true
	cl := newTestCluster(t, cfg)
	dumpEventsOnFailure(t, cl)
	if err := cl.WaitForCoordinator(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	c := cl.Client()
	const keys = 32
	for i := 0; i < keys; i++ {
		if err := c.Put([]byte(fmt.Sprintf("ec-%02d", i)), []byte(fmt.Sprintf("chunk-%02d", i))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}

	if _, err := cl.AddMemoryNode(""); err == nil {
		t.Fatal("single-node add on an EC group succeeded")
	}
	if err := cl.RemoveMemoryNode("mem0"); err == nil {
		t.Fatal("single-node remove on an EC group succeeded")
	}

	k, m := cl.mcfg.ECData, cl.mcfg.ECParity
	fresh := []string{"ecA", "ecB", "ecC"}
	if err := cl.RestripeMemoryNodes(fresh, k, m); err != nil {
		t.Fatalf("restripe: %v", err)
	}
	now := cl.MemoryNodes()
	if len(now) != len(fresh) || now[0] != "ecA" {
		t.Fatalf("member set %v after restripe, want %v", now, fresh)
	}
	awaitConfigEpoch(t, cl, 2)
	for i := 0; i < keys; i++ {
		v, err := c.Get([]byte(fmt.Sprintf("ec-%02d", i)))
		if err != nil || string(v) != fmt.Sprintf("chunk-%02d", i) {
			t.Fatalf("get %d after restripe: %q, %v", i, v, err)
		}
	}
	// The vacated nodes carry the retiring epoch's tombstone.
	for _, old := range []string{"mem0", "mem1", "mem2"} {
		if got := readAdminWord(t, cl, old, memnode.AdminRetiredOffset); got != 2 {
			t.Fatalf("vacated node %s retired word %d, want tombstone 2", old, got)
		}
	}
	rep, err := cl.ScrubNow()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt != 0 || rep.Unrepaired != 0 {
		t.Fatalf("scrub after restripe found damage: %+v", rep)
	}
}

// TestReconfigFencingStaleNode is the removed-node fencing regression: a
// memory node goes gray (host silent, DRAM intact), is replaced through the
// dead path — so the coordinator cannot write its retirement tombstone —
// and then comes back. The revenant keeps its entire pre-removal state and
// a stale epoch word, and the test asserts both planes still fence it: a
// backup reader over the old configuration fails the epoch/serving
// qualification, and a takeover attempt built from the old member list is
// refused with ErrStaleConfig by the survivors' epoch words alone.
func TestReconfigFencingStaleNode(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run in -short mode")
	}
	cfg := grayConfig()
	cl := newTestCluster(t, cfg)
	dumpEventsOnFailure(t, cl)
	if err := cl.WaitForCoordinator(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	c := cl.Client()
	if err := c.Put([]byte("fence-key"), []byte("fence-val")); err != nil {
		t.Fatal(err)
	}

	oldMembers := append([]string(nil), cl.MemoryNodes()...)
	oldEpoch := cl.ConfigEpoch()
	victim := oldMembers[1]

	// Hang, don't kill: connections stay up, the host just stops
	// answering — the worst case for fencing, because nothing on the
	// victim can be updated (no tombstone, no epoch advance).
	cl.Faults().Node(victim).Hang()
	repl, err := cl.ReplaceMemoryNode(victim, "")
	if err != nil {
		t.Fatalf("replace hung node: %v", err)
	}
	if !eventsContain(cl, "retire-unreachable") {
		t.Fatal("expected a reconfig.retire-unreachable event for the hung victim")
	}
	t.Logf("replaced hung %s -> %s at epoch %d", victim, repl, cl.ConfigEpoch())

	// The revenant: full DRAM from before the removal, stale epoch word.
	cl.Faults().Node(victim).Resume()
	if got := readAdminEpoch(t, cl, victim); got != oldEpoch {
		t.Fatalf("victim epoch word %d, want untouched %d", got, oldEpoch)
	}
	for _, m := range cl.MemoryNodes() {
		if got := readAdminEpoch(t, cl, m); got <= oldEpoch {
			t.Fatalf("survivor %s epoch word %d, want > %d", m, got, oldEpoch)
		}
	}

	// Plane 1: backup reads. A view pinned to the old configuration (the
	// revenant included) must fail the qualification a backup reader
	// performs before serving: the committed epoch visible on a majority
	// exceeds the view's, and no serving word matches the old epoch.
	vcfg := cl.mcfg
	vcfg.MemoryNodes = oldMembers
	vcfg.Epoch = oldEpoch
	vcfg.Dial = observerDial(cl, "stale-backup")
	view, err := repmem.NewView(vcfg)
	if err != nil {
		t.Fatalf("stale view: %v", err)
	}
	defer view.Close()
	view.SetMask((1 << uint(len(oldMembers))) - 1)
	if e, _, ok := view.ReadEpoch(); !ok || e <= oldEpoch {
		t.Fatalf("stale view read epoch %d ok=%v, want > %d — revenant would go undetected", e, ok, oldEpoch)
	}
	if e, _, ok := view.ReadServing(); ok && e == oldEpoch {
		t.Fatalf("serving word still matches retired epoch %d — stale leases possible", oldEpoch)
	}

	// Plane 2: data-plane takeover. Building a write-side Memory from the
	// old member list must be refused outright — the survivors' epoch
	// words supersede the stale config even though the victim itself
	// carries no tombstone. (The exclusive dials this attempt makes will
	// fence the live coordinator's connections; the cluster must re-elect
	// and keep serving, which the tail of the test verifies.)
	rcfg := cl.mcfg
	rcfg.MemoryNodes = oldMembers
	rcfg.Epoch = oldEpoch
	rcfg.Dial = func(node string) (rdma.Verbs, error) {
		return cl.network.Dial("rogue", node, rdma.DialOpts{
			Exclusive:  []rdma.RegionID{memnode.ReplRegionID},
			OpDeadline: cl.cfg.OpDeadline,
		})
	}
	if _, err := repmem.New(rcfg); !errors.Is(err, repmem.ErrStaleConfig) {
		t.Fatalf("stale-config takeover: err=%v, want ErrStaleConfig", err)
	}

	// The cluster recovers from the rogue's fencing and still serves the
	// pre-replacement write in the new configuration.
	if err := cl.WaitForCoordinator(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, err := c.Get([]byte("fence-key"))
		if err == nil && string(v) == "fence-val" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fence-key unreadable after recovery: %q, %v", v, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBackupReadStraddlesReplacement is the chain-walk/reconfiguration
// interplay regression. First the contract itself: a ChainReader walk whose
// underlying view is torn down mid-flight (exactly what the backup reader
// does when it rebuilds for a new epoch) must surface kv.ErrBackupRetry —
// the signal to fall back to the coordinator — never a wrong answer. Then
// end to end: with lease-based backup reads enabled, a node replacement
// under read traffic must produce only correct values, and backups must
// resume serving in the new configuration.
func TestBackupReadStraddlesReplacement(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run in -short mode")
	}
	cl := newTestCluster(t, backupConfig())
	dumpEventsOnFailure(t, cl)
	if err := cl.WaitForCoordinator(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	c := cl.Client()
	if err := c.Put([]byte("straddle"), []byte("v1")); err != nil {
		t.Fatal(err)
	}

	// Contract check on a hand-built reader, mirroring the backup path.
	vcfg := cl.mcfg
	vcfg.Dial = observerDial(cl, "straddle-probe")
	view, err := repmem.NewView(vcfg)
	if err != nil {
		t.Fatal(err)
	}
	view.SetMask((1 << uint(len(cl.MemoryNodes()))) - 1)
	align := 1
	if vcfg.ECData > 0 {
		align = vcfg.ECBlockSize
	}
	chain, err := kv.NewChainReader(cl.kcfg, align, view)
	if err != nil {
		view.Close()
		t.Fatal(err)
	}
	if v, err := chain.Get([]byte("straddle")); err != nil || string(v) != "v1" {
		view.Close()
		t.Fatalf("chain read before teardown: %q, %v", v, err)
	}
	view.Close() // what a reconfiguration rebuild does to an in-flight walk
	if _, err := chain.Get([]byte("straddle")); !errors.Is(err, kv.ErrBackupRetry) {
		t.Fatalf("chain read across view teardown: err=%v, want ErrBackupRetry", err)
	}

	// End to end: replace a node under read traffic; every read must return
	// the current value (client Gets transparently fall back on
	// ErrBackupRetry, so any error here is a real bug).
	stop := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				errCh <- nil
				return
			default:
			}
			v, err := c.Get([]byte("straddle"))
			if err != nil && !errors.Is(err, ErrNoCoordinator) {
				errCh <- fmt.Errorf("get during replacement: %w", err)
				return
			}
			if err == nil && string(v) != "v1" {
				errCh <- fmt.Errorf("get during replacement returned %q, want v1", v)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	victim := cl.MemoryNodes()[0]
	if _, err := cl.ReplaceMemoryNode(victim, ""); err != nil {
		close(stop)
		<-errCh
		t.Fatalf("replace under backup traffic: %v", err)
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}

	// Backups must serve again in the new configuration: the counter has to
	// move from here with only read traffic running.
	served := cl.cm.backupGets.Value()
	deadline := time.Now().Add(10 * time.Second)
	for cl.cm.backupGets.Value() == served {
		if time.Now().After(deadline) {
			t.Fatalf("backup reads never resumed after replacement (stuck at %d served)", served)
		}
		if v, err := c.Get([]byte("straddle")); err != nil || string(v) != "v1" {
			t.Fatalf("get after replacement: %q, %v", v, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Logf("backup reads resumed post-replacement: %d served, %d fallbacks",
		cl.cm.backupGets.Value(), cl.cm.backupFallbacks.Value())
}
