// Ablation benchmarks for Sift's design choices, complementing the
// paper-figure benchmarks in bench_test.go:
//
//   - coordinator cache size (the §4.1 cache is what keeps Sift's read
//     throughput near Raft-R's despite stateless CPU nodes),
//   - erasure coding on the write path (the §5.1 trade: less memory,
//     more CPU + RDMA operations per write),
//   - KV log size (the §6.5 trade: smaller logs recover faster but bound
//     in-flight writes),
//   - heartbeat interval (failure detection time vs heartbeat traffic).
package sift_test

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	sift "github.com/repro/sift"
	"github.com/repro/sift/internal/workload"
)

// ablationCluster builds a populated cluster for ablation runs.
func ablationCluster(b *testing.B, cfg sift.Config) (*sift.Cluster, *sift.Client) {
	b.Helper()
	if cfg.Keys == 0 {
		cfg.Keys = 2048
	}
	cfg.MaxValueSize = 256
	cl, err := sift.NewCluster(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(cl.Close)
	client := cl.Client()
	value := make([]byte, 256)
	for i := 0; i < cfg.Keys; i++ {
		if err := client.Put(workload.DefaultKey(i), value); err != nil {
			b.Fatal(err)
		}
	}
	return cl, client
}

// BenchmarkAblationCacheSize sweeps the coordinator cache fraction under
// the read-heavy Zipfian workload. The paper's 50% cache is what lets Sift
// match Raft-R's read throughput (§6.3.2); 0% shows the raw cost of
// stateless CPU nodes (every get is a remote chain walk).
func BenchmarkAblationCacheSize(b *testing.B) {
	for _, frac := range []float64{0.001, 0.1, 0.25, 0.5, 1.0} {
		b.Run(fmt.Sprintf("cache=%.0f%%", frac*100), func(b *testing.B) {
			cl, client := ablationCluster(b, sift.Config{F: 1, CacheFraction: frac})
			var seq atomic.Int64
			b.SetParallelism(16)
			b.ResetTimer()
			start := time.Now()
			b.RunParallel(func(pb *testing.PB) {
				gen := workload.NewGenerator(workload.Config{
					Mix: workload.ReadHeavy, Keys: 2048, ValueSize: 256,
					ZipfTheta: 0.99, Seed: seq.Add(1),
				})
				for pb.Next() {
					op := gen.Next()
					if op.Read {
						client.Get(op.Key) //nolint:errcheck
					} else {
						client.Put(op.Key, op.Value) //nolint:errcheck
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "ops/sec")
			st := cl.Stats()
			if total := st.KV.CacheHits + st.KV.CacheMisses; total > 0 {
				b.ReportMetric(100*float64(st.KV.CacheHits)/float64(total), "cache-hit-pct")
			}
		})
	}
}

// BenchmarkAblationErasureWritePath compares the write path with and
// without erasure coding: EC halves per-node memory (F=1) but each apply
// must encode and fan out chunks, and sub-block updates read-modify-write.
func BenchmarkAblationErasureWritePath(b *testing.B) {
	for _, ec := range []bool{false, true} {
		name := "replicated"
		if ec {
			name = "erasure-coded"
		}
		b.Run(name, func(b *testing.B) {
			_, client := ablationCluster(b, sift.Config{F: 1, ErasureCoding: ec})
			var seq atomic.Int64
			b.SetParallelism(16)
			b.ResetTimer()
			start := time.Now()
			b.RunParallel(func(pb *testing.PB) {
				gen := workload.NewGenerator(workload.Config{
					Mix: workload.WriteOnly, Keys: 2048, ValueSize: 256,
					ZipfTheta: 0.99, Seed: seq.Add(1),
				})
				for pb.Next() {
					op := gen.Next()
					if err := client.Put(op.Key, op.Value); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "ops/sec")
		})
	}
}

// BenchmarkAblationLogSize sweeps the KV log size and measures coordinator
// failover outage: larger logs permit more in-flight writes but lengthen
// log recovery (§6.5: "recovery time is largely determined by the size of
// the write-ahead log in both ... layers").
func BenchmarkAblationLogSize(b *testing.B) {
	for _, slots := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("kvlog=%d", slots), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := sift.Config{
					F: 1, Keys: 1024, MaxValueSize: 256, KVWALSlots: slots,
					HeartbeatInterval: 2 * time.Millisecond,
					ReadInterval:      2 * time.Millisecond,
					Seed:              int64(i + 1),
				}
				cl, err := sift.NewCluster(cfg)
				if err != nil {
					b.Fatal(err)
				}
				client := cl.Client()
				value := make([]byte, 256)
				// Fill a good part of the log with committed writes so the
				// takeover has something to replay.
				for k := 0; k < slots/2; k++ {
					if err := client.Put(workload.DefaultKey(k%1024), value); err != nil {
						b.Fatal(err)
					}
				}
				start := time.Now()
				cl.KillCoordinator()
				if err := cl.WaitForCoordinator(20 * time.Second); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(time.Since(start).Milliseconds()), "failover-ms")
				cl.Close()
			}
		})
	}
}

// BenchmarkAblationHeartbeatInterval measures failure detection time as a
// function of the heartbeat interval (detection ≈ interval × missed beats,
// §3.2) — the lease-length/recovery-time trade-off.
func BenchmarkAblationHeartbeatInterval(b *testing.B) {
	for _, hb := range []time.Duration{2 * time.Millisecond, 7 * time.Millisecond, 20 * time.Millisecond} {
		b.Run(hb.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cl, err := sift.NewCluster(sift.Config{
					F: 1, Keys: 256, MaxValueSize: 64,
					HeartbeatInterval: hb, ReadInterval: hb,
					Seed: int64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				cl.Client().Put([]byte("k"), []byte("v")) //nolint:errcheck
				start := time.Now()
				cl.KillCoordinator()
				if err := cl.WaitForCoordinator(30 * time.Second); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(time.Since(start).Milliseconds()), "failover-ms")
				cl.Close()
			}
		})
	}
}
