package sift

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/repro/sift/internal/backuppool"
	"github.com/repro/sift/internal/kv"
	"github.com/repro/sift/internal/linearize"
	"github.com/repro/sift/internal/shard"
)

// ShardConfig sizes a multi-group (horizontally sharded) deployment: N
// independent Sift consensus groups behind a key-routing client. Each group
// is a full Cluster (2F+1 memory nodes plus CPU nodes); keys are assigned
// to groups by an epoch-versioned rendezvous shard map (internal/shard).
type ShardConfig struct {
	// Groups is the number of consensus groups (≥1).
	Groups int
	// Group is the per-group cluster configuration. Every group gets an
	// identical copy except for a derived Seed, so groups make independent
	// random choices.
	Group Config

	// BackupPoolSize is the number of standby CPU nodes shared by all
	// groups (the paper's §5.2/§6.4.2 spare-resource model: one small pool
	// backs many groups instead of one idle backup per group). A group that
	// loses its last coordinator claims a standby; a free one takes over
	// immediately while a replacement VM provisions in the background.
	BackupPoolSize int
	// ProvisionDelay is how long a replacement standby takes to provision
	// (paper: 100 s; scale it down for in-process experiments).
	ProvisionDelay time.Duration
	// FailoverGrace, when >0, enables the pool monitor: a group observed
	// without a coordinator for this long has a pooled backup claimed and
	// started for it automatically. Zero leaves claiming to explicit
	// ClaimBackupFor calls.
	FailoverGrace time.Duration
}

func (c ShardConfig) validate() error {
	if c.Groups < 1 {
		return fmt.Errorf("sift: ShardConfig.Groups = %d, need ≥1", c.Groups)
	}
	return c.Group.Validate()
}

// ShardCluster is a cluster of clusters: Groups independent Sift groups in
// one process, a shared shard map routing keys to groups, and a shared
// backup-CPU pool absorbing coordinator losses. Each group keeps its own
// fabric, fault controller, and observability surface, so the existing
// chaos and failure-injection harnesses work unmodified against any single
// group (via Group(i)) while the others keep serving.
type ShardCluster struct {
	cfg    ShardConfig
	groups []*Cluster

	mapMu sync.Mutex
	smap  shard.Map

	pool *backuppool.LivePool

	monitorStop chan struct{}
	stopOnce    sync.Once
	monitorWG   sync.WaitGroup

	nextBackup atomic.Uint32 // allocates replacement CPU-node ids

	poolStarts atomic.Uint64 // replacement CPU nodes started via the pool
}

// NewShardCluster boots every group and waits for each to elect a
// coordinator.
func NewShardCluster(cfg ShardConfig) (*ShardCluster, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ids := make([]shard.GroupID, cfg.Groups)
	for i := range ids {
		ids[i] = shard.GroupID(i)
	}
	smap, err := shard.NewMap(1, ids)
	if err != nil {
		return nil, err
	}
	delay := cfg.ProvisionDelay
	if delay <= 0 {
		delay = 100 * time.Millisecond
	}
	sc := &ShardCluster{
		cfg:  cfg,
		smap: smap,
		pool: backuppool.NewLivePool(cfg.BackupPoolSize, delay),
	}

	// Boot groups concurrently: each blocks on its own election.
	sc.groups = make([]*Cluster, cfg.Groups)
	errs := make([]error, cfg.Groups)
	var wg sync.WaitGroup
	for g := 0; g < cfg.Groups; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			gcfg := cfg.Group
			gcfg.Seed = cfg.Group.Seed + int64(g)*104729
			sc.groups[g], errs[g] = NewCluster(gcfg)
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			sc.Close()
			return nil, err
		}
	}

	if cfg.FailoverGrace > 0 {
		sc.monitorStop = make(chan struct{})
		sc.monitorWG.Add(1)
		go sc.monitor()
	}
	return sc, nil
}

// Groups returns the number of consensus groups.
func (sc *ShardCluster) Groups() int { return len(sc.groups) }

// Group returns group g's cluster, for per-group fault injection,
// failover forcing, and stats. It panics on an out-of-range id, like a
// slice index would.
func (sc *ShardCluster) Group(g shard.GroupID) *Cluster { return sc.groups[int(g)] }

// Map returns the current shard map snapshot.
func (sc *ShardCluster) Map() shard.Map {
	sc.mapMu.Lock()
	defer sc.mapMu.Unlock()
	return sc.smap
}

// AdvanceMapEpoch mints a new shard-map epoch over the unchanged group set
// and returns it. Per-group online reconfiguration (DESIGN.md §14) calls
// this to version its membership changes at the routing layer; because the
// group set is unchanged, key→group assignments are guaranteed identical —
// routers may adopt the new epoch without any key migration.
func (sc *ShardCluster) AdvanceMapEpoch() (shard.Map, error) {
	sc.mapMu.Lock()
	defer sc.mapMu.Unlock()
	nm, err := sc.smap.Next(sc.smap.Groups())
	if err != nil {
		return shard.Map{}, err
	}
	sc.smap = nm
	return nm, nil
}

// SetLinkLatency applies a fixed link-latency model to every group's
// fabric — one knob to move the whole deployment between latency regimes
// (e.g. RDMA-class microseconds vs. datacenter-TCP hundreds of
// microseconds) for scaling experiments.
func (sc *ShardCluster) SetLinkLatency(base, perByte time.Duration) {
	for _, g := range sc.groups {
		g.SetLinkLatency(base, perByte)
	}
}

// ClaimBackupFor synchronously claims a standby CPU node from the shared
// pool for group g and starts it (waiting out provisioning when no standby
// is free). It returns the provisioning wait that was incurred and the new
// CPU node's id. The caller is responsible for having observed that the
// group actually needs one; claiming for a healthy group just adds a spare.
func (sc *ShardCluster) ClaimBackupFor(g shard.GroupID) (time.Duration, uint16, error) {
	if int(g) < 0 || int(g) >= len(sc.groups) {
		return 0, 0, fmt.Errorf("sift: no group %d", g)
	}
	wait, _ := sc.pool.Claim()
	if wait > 0 {
		time.Sleep(wait)
	}
	id := sc.newBackupID()
	sc.groups[int(g)].StartCPUNode(id)
	sc.poolStarts.Add(1)
	return wait, id, nil
}

// newBackupID allocates a CPU-node id outside the range any group's
// configured nodes use.
func (sc *ShardCluster) newBackupID() uint16 {
	return uint16(10000 + sc.nextBackup.Add(1))
}

// monitor watches for groups without a coordinator and claims pooled
// backups for them. One claim is in flight per group at a time; a group
// that recovers on its own (a surviving follower won the election) before
// the grace expires costs the pool nothing.
func (sc *ShardCluster) monitor() {
	defer sc.monitorWG.Done()
	grace := sc.cfg.FailoverGrace
	tick := grace / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	downSince := make([]time.Time, len(sc.groups))
	claiming := make([]bool, len(sc.groups))
	var mu sync.Mutex
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-sc.monitorStop:
			return
		case <-t.C:
		}
		now := time.Now()
		for g := range sc.groups {
			if sc.groups[g].Coordinator() != 0 {
				downSince[g] = time.Time{}
				continue
			}
			if downSince[g].IsZero() {
				downSince[g] = now
				continue
			}
			mu.Lock()
			busy := claiming[g]
			if !busy && now.Sub(downSince[g]) >= grace {
				claiming[g] = true
			}
			mu.Unlock()
			if busy || now.Sub(downSince[g]) < grace {
				continue
			}
			sc.monitorWG.Add(1)
			go func(g int) {
				defer sc.monitorWG.Done()
				sc.ClaimBackupFor(shard.GroupID(g)) //nolint:errcheck — g is in range
				mu.Lock()
				claiming[g] = false
				mu.Unlock()
			}(g)
		}
	}
}

// PoolStats returns the shared backup pool's counters and how many
// replacement CPU nodes have been started through it.
func (sc *ShardCluster) PoolStats() (backuppool.LiveStats, uint64) {
	return sc.pool.Stats(), sc.poolStarts.Load()
}

// ShardStats aggregates per-group counters.
type ShardStats struct {
	Epoch  uint64
	Groups []Stats
}

// Stats snapshots every group's coordinator counters.
func (sc *ShardCluster) Stats() ShardStats {
	out := ShardStats{Epoch: sc.Map().Epoch(), Groups: make([]Stats, len(sc.groups))}
	for g, cl := range sc.groups {
		out.Groups[g] = cl.Stats()
	}
	return out
}

// Client returns a routing client over the shard map. Clients are cheap
// and safe for concurrent use.
func (sc *ShardCluster) Client() *ShardClient {
	clients := make([]*Client, len(sc.groups))
	for g, cl := range sc.groups {
		clients[g] = cl.Client()
	}
	return &ShardClient{sc: sc, clients: clients}
}

// Close stops the pool monitor and tears every group down.
func (sc *ShardCluster) Close() {
	if sc.monitorStop != nil {
		sc.stopOnce.Do(func() { close(sc.monitorStop) })
	}
	sc.monitorWG.Wait()
	var wg sync.WaitGroup
	for _, g := range sc.groups {
		if g == nil {
			continue
		}
		wg.Add(1)
		go func(g *Cluster) {
			defer wg.Done()
			g.Close()
		}(g)
	}
	wg.Wait()
}

// ShardClient routes single-key operations to the owning group and fans
// batches out as per-group sub-batches. It keeps one group-affine Client
// per group, so consecutive operations on the same group reuse that
// group's coordinator path (and its retry/backoff state) instead of
// re-resolving from scratch.
type ShardClient struct {
	sc      *ShardCluster
	clients []*Client

	// RetryBudget bounds each single-key operation, and bounds an entire
	// PutBatch fan-out end to end (all groups share one wall-clock budget).
	// Default 10s.
	RetryBudget time.Duration
	// ClientID labels operations in the recorded History.
	ClientID int
	// History, when non-nil, records every operation for linearizability
	// checking. Keys routed to different groups are still one per-key
	// history, which is exactly what the per-key checker verifies.
	History *linearize.Recorder
}

func (c *ShardClient) budget() time.Duration {
	if c.RetryBudget > 0 {
		return c.RetryBudget
	}
	return 10 * time.Second
}

// groupClient returns the group-affine client for key, configured with
// this router's identity.
func (c *ShardClient) groupClient(key []byte) *Client {
	g := c.sc.Map().GroupFor(key)
	return c.configured(g)
}

// configured returns a Client for group g carrying this router's identity.
// It is a fresh handle over the group-affine client's cluster rather than a
// mutation of the shared one, so a single ShardClient is safe for
// concurrent use.
func (c *ShardClient) configured(g shard.GroupID) *Client {
	gc := c.clients[int(g)]
	return &Client{
		cluster:     gc.cluster,
		RetryBudget: c.budget(),
		ClientID:    c.ClientID,
		History:     c.History,
	}
}

// Put stores value under key on the owning group.
func (c *ShardClient) Put(key, value []byte) error {
	return c.groupClient(key).Put(key, value)
}

// Get returns the value stored under key from the owning group.
func (c *ShardClient) Get(key []byte) ([]byte, error) {
	return c.groupClient(key).Get(key)
}

// Delete removes key on the owning group.
func (c *ShardClient) Delete(key []byte) error {
	return c.groupClient(key).Delete(key)
}

// GroupBatchError is one group's failure inside a fanned-out PutBatch.
type GroupBatchError struct {
	Group shard.GroupID
	Err   error
	// Pairs are the sub-batch pairs whose fate this error describes.
	Pairs []Pair
}

// BatchError reports a PutBatch fan-out's partial failure: which groups
// failed (and how), and which groups had already acknowledged their
// sub-batch. Acked sub-batches are durable — the caller must NOT resend
// the whole batch; retry only the failed groups' pairs (or resend the
// whole batch through a fresh PutBatch and rely on server-side dedup
// tokens, which BatchError callers get for free since every sub-batch is
// committed idempotently).
type BatchError struct {
	Failed []GroupBatchError
	Acked  []shard.GroupID
}

// Error implements error.
func (e *BatchError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sift: batch failed on %d group(s):", len(e.Failed))
	for _, f := range e.Failed {
		fmt.Fprintf(&b, " group %d: %v;", f.Group, f.Err)
	}
	if len(e.Acked) > 0 {
		fmt.Fprintf(&b, " %d group(s) acked", len(e.Acked))
	}
	return b.String()
}

// Unwrap exposes the per-group errors so errors.Is sees through the
// aggregate (e.g. errors.Is(err, ErrAmbiguous)).
func (e *BatchError) Unwrap() []error {
	errs := make([]error, len(e.Failed))
	for i, f := range e.Failed {
		errs[i] = f.Err
	}
	return errs
}

// PutBatch routes each pair to its owning group and commits the per-group
// sub-batches concurrently. Atomicity is per group: a sub-batch occupies
// one log entry in its group, but there is no cross-group transaction —
// pairs landing on different groups commit independently.
//
// All sub-batches share one wall-clock retry budget (the fan-out as a
// whole respects RetryBudget), and each sub-batch carries its own
// idempotency token: a group that acknowledged is never re-sent, and a
// group whose outcome was ambiguous dedups server-side if the retry finds
// the original commit. On partial failure the returned error is a
// *BatchError naming the failed groups and their pairs; nil means every
// group acknowledged.
func (c *ShardClient) PutBatch(pairs []Pair) error {
	if len(pairs) == 0 {
		return nil
	}
	keys := make([][]byte, len(pairs))
	for i, p := range pairs {
		keys[i] = p.Key
	}
	m := c.sc.Map()
	parts := m.Split(keys)

	// Record each pair's history up front, resolved per group below.
	var ps []*linearize.Pending
	if c.History != nil {
		ps = make([]*linearize.Pending, len(pairs))
		for i, pr := range pairs {
			if pr.Value == nil {
				ps[i] = c.History.Invoke(c.ClientID, linearize.KindDelete, string(pr.Key), "")
			} else {
				ps[i] = c.History.Invoke(c.ClientID, linearize.KindPut, string(pr.Key), string(pr.Value))
			}
		}
	}

	// One absolute deadline for the whole fan-out: each group's retry loop
	// clamps to the remaining total.
	deadline := time.Now().Add(c.budget())

	type result struct {
		g    shard.GroupID
		idxs []int
		err  error
	}
	results := make(chan result, len(parts))
	for g, idxs := range parts {
		sub := make([]Pair, len(idxs))
		for i, idx := range idxs {
			sub[i] = pairs[idx]
		}
		go func(g shard.GroupID, idxs []int, sub []Pair) {
			tok := newBatchToken()
			gc := c.configured(g)
			start := time.Now()
			err := gc.doUntil(deadline, func(st *kv.Store) error {
				return st.PutBatchIdem(tok, sub)
			})
			c.sc.groups[int(g)].cm.batchLat.Record(time.Since(start))
			results <- result{g: g, idxs: idxs, err: err}
		}(g, idxs, sub)
	}

	var be BatchError
	for range parts {
		r := <-results
		if ps != nil {
			for _, i := range r.idxs {
				finishWrite(ps[i], r.err)
			}
		}
		if r.err != nil {
			sub := make([]Pair, len(r.idxs))
			for i, idx := range r.idxs {
				sub[i] = pairs[idx]
			}
			be.Failed = append(be.Failed, GroupBatchError{Group: r.g, Err: r.err, Pairs: sub})
		} else {
			be.Acked = append(be.Acked, r.g)
		}
	}
	if len(be.Failed) == 0 {
		return nil
	}
	sort.Slice(be.Failed, func(i, j int) bool { return be.Failed[i].Group < be.Failed[j].Group })
	sort.Slice(be.Acked, func(i, j int) bool { return be.Acked[i] < be.Acked[j] })
	return &be
}

// AsBatchError extracts a *BatchError from err, if it is one.
func AsBatchError(err error) (*BatchError, bool) {
	var be *BatchError
	if errors.As(err, &be) {
		return be, true
	}
	return nil, false
}
