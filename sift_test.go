package sift

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// smallConfig keeps in-process clusters light for tests.
func smallConfig() Config {
	return Config{
		F:                    1,
		Keys:                 512,
		MaxKeySize:           32,
		MaxValueSize:         128,
		KVWALSlots:           128,
		MemWALSlots:          128,
		MemWALSlotSize:       1024,
		HeartbeatInterval:    2 * time.Millisecond,
		ReadInterval:         2 * time.Millisecond,
		NodeRecoveryInterval: 20 * time.Millisecond,
	}
}

func newTestCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	cl, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

func TestClusterPutGetDelete(t *testing.T) {
	cl := newTestCluster(t, smallConfig())
	c := cl.Client()
	if err := c.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get([]byte("k"))
	if err != nil || string(v) != "v" {
		t.Fatalf("got %q err=%v", v, err)
	}
	if err := c.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get([]byte("k")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key: %v", err)
	}
}

func TestZeroConfigCluster(t *testing.T) {
	cl, err := NewCluster(Config{
		HeartbeatInterval: 2 * time.Millisecond,
		ReadInterval:      2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	c := cl.Client()
	if err := c.Put([]byte("zero"), []byte("config")); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get([]byte("zero"))
	if err != nil || string(v) != "config" {
		t.Fatalf("got %q err=%v", v, err)
	}
}

func TestClusterCoordinatorFailover(t *testing.T) {
	cl := newTestCluster(t, smallConfig())
	c := cl.Client()
	for i := 0; i < 30; i++ {
		if err := c.Put([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	old := cl.KillCoordinator()
	if old == 0 {
		t.Fatal("no coordinator to kill")
	}
	// The client retries across the failover transparently.
	for i := 0; i < 30; i++ {
		v, err := c.Get([]byte(fmt.Sprintf("k%d", i)))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%d after failover: %q err=%v", i, v, err)
		}
	}
	if cl.Coordinator() == old {
		t.Fatal("old coordinator still listed")
	}
	// Writes work on the new coordinator.
	if err := c.Put([]byte("post"), []byte("failover")); err != nil {
		t.Fatal(err)
	}
	// A replacement CPU node can join for future failovers.
	cl.StartCPUNode(old)
}

func TestClusterMemoryNodeFailureAndRecovery(t *testing.T) {
	cl := newTestCluster(t, smallConfig())
	c := cl.Client()
	for i := 0; i < 20; i++ {
		c.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	victim := cl.MemoryNodes()[0]
	cl.KillMemoryNode(victim)
	// Cluster still serves with one memory node down.
	if err := c.Put([]byte("during"), []byte("failure")); err != nil {
		t.Fatal(err)
	}
	cl.RestartMemoryNode(victim)
	if err := cl.AwaitMemoryNodeRecovery(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get([]byte("during"))
	if err != nil || string(v) != "failure" {
		t.Fatalf("got %q err=%v", v, err)
	}
}

func TestClusterErasureCoding(t *testing.T) {
	cfg := smallConfig()
	cfg.ErasureCoding = true
	cl := newTestCluster(t, cfg)
	c := cl.Client()
	for i := 0; i < 40; i++ {
		if err := c.Put([]byte(fmt.Sprintf("ec%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Kill one memory node: reads must decode from surviving chunks.
	cl.KillMemoryNode(cl.MemoryNodes()[0])
	for i := 0; i < 40; i++ {
		v, err := c.Get([]byte(fmt.Sprintf("ec%d", i)))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("ec%d: %q err=%v", i, v, err)
		}
	}
}

func TestClusterF2(t *testing.T) {
	cfg := smallConfig()
	cfg.F = 2
	cl := newTestCluster(t, cfg)
	if len(cl.MemoryNodes()) != 5 {
		t.Fatalf("memory nodes = %d", len(cl.MemoryNodes()))
	}
	c := cl.Client()
	c.Put([]byte("k"), []byte("v"))
	// Two memory failures tolerated.
	cl.KillMemoryNode(cl.MemoryNodes()[0])
	cl.KillMemoryNode(cl.MemoryNodes()[1])
	if err := c.Put([]byte("k2"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get([]byte("k"))
	if err != nil || string(v) != "v" {
		t.Fatalf("got %q err=%v", v, err)
	}
}

func TestClusterConcurrentClients(t *testing.T) {
	cl := newTestCluster(t, smallConfig())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := cl.Client()
			for i := 0; i < 40; i++ {
				k := []byte(fmt.Sprintf("w%d-%d", w, i%10))
				if i%3 == 0 {
					if _, err := c.Get(k); err != nil && !errors.Is(err, ErrNotFound) {
						t.Errorf("get: %v", err)
						return
					}
				} else if err := c.Put(k, []byte("v")); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestClusterStats(t *testing.T) {
	cl := newTestCluster(t, smallConfig())
	c := cl.Client()
	c.Put([]byte("k"), []byte("v"))
	c.Get([]byte("k"))
	st := cl.Stats()
	if st.CoordinatorID == 0 {
		t.Fatal("no coordinator in stats")
	}
	if st.KV.Puts < 1 || st.KV.Gets < 1 {
		t.Fatalf("kv stats %+v", st.KV)
	}
	if st.Memory.DirectWrites < 1 {
		t.Fatalf("memory stats %+v", st.Memory)
	}
}

func TestClusterCloseIdempotent(t *testing.T) {
	cl := newTestCluster(t, smallConfig())
	cl.Close()
	cl.Close()
	// After close there is no coordinator; client ops fail cleanly.
	c := cl.Client()
	c.RetryBudget = 50 * time.Millisecond
	if err := c.Put([]byte("k"), []byte("v")); !errors.Is(err, ErrNoCoordinator) {
		t.Fatalf("put after close: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	if err := (Config{F: 99}).Validate(); err == nil {
		t.Fatal("F=99 accepted")
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
}

func TestClusterWithLatencyProfile(t *testing.T) {
	cfg := smallConfig()
	cfg.Latency = RDMALatency
	cfg.Keys = 128
	cl := newTestCluster(t, cfg)
	c := cl.Client()
	if err := c.Put([]byte("lat"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get([]byte("lat")); err != nil {
		t.Fatal(err)
	}
}

func TestClientPutBatch(t *testing.T) {
	cl := newTestCluster(t, smallConfig())
	c := cl.Client()
	if err := c.PutBatch([]Pair{
		{Key: []byte("acct-a"), Value: []byte("90")},
		{Key: []byte("acct-b"), Value: []byte("110")},
	}); err != nil {
		t.Fatal(err)
	}
	va, _ := c.Get([]byte("acct-a"))
	vb, _ := c.Get([]byte("acct-b"))
	if string(va) != "90" || string(vb) != "110" {
		t.Fatalf("batch values: %q %q", va, vb)
	}
	// Atomicity across failover: commit a batch, kill the coordinator, read
	// both halves from the successor.
	if err := c.PutBatch([]Pair{
		{Key: []byte("acct-a"), Value: []byte("50")},
		{Key: []byte("acct-b"), Value: []byte("150")},
	}); err != nil {
		t.Fatal(err)
	}
	cl.KillCoordinator()
	va, erra := c.Get([]byte("acct-a"))
	vb, errb := c.Get([]byte("acct-b"))
	if erra != nil || errb != nil || string(va) != "50" || string(vb) != "150" {
		t.Fatalf("after failover: %q/%v %q/%v", va, erra, vb, errb)
	}
}
