package sift

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/repro/sift/internal/faultrdma"
	"github.com/repro/sift/internal/kv"
	"github.com/repro/sift/internal/linearize"
	"github.com/repro/sift/internal/rdma"
	"github.com/repro/sift/internal/repmem"
)

// TestRetriableClassifiesTransportErrors is the regression test for the
// retriable() gap: raw and wrapped transport deadline/teardown errors must
// trigger a failover retry, not surface to the caller.
func TestRetriableClassifiesTransportErrors(t *testing.T) {
	for _, err := range []error{
		rdma.ErrDeadline,
		rdma.ErrClosed,
		fmt.Errorf("write log slot: %w", rdma.ErrDeadline),
		fmt.Errorf("read block: %w", rdma.ErrClosed),
		kv.ErrClosed,
		repmem.ErrFenced,
		repmem.ErrClosed,
		repmem.ErrNoQuorum,
	} {
		if !retriable(err) {
			t.Errorf("retriable(%v) = false, want true", err)
		}
	}
	for _, err := range []error{
		nil,
		kv.ErrNotFound,
		kv.ErrTooLarge,
		errors.New("some caller mistake"),
	} {
		if retriable(err) {
			t.Errorf("retriable(%v) = true, want false", err)
		}
	}
}

// TestClientRetriesDeadlineFromHungNode drives Client.do with a genuine
// rdma.ErrDeadline produced by a fault-injected hung connection (not a
// hand-crafted error). Pre-fix, do() surfaced the raw deadline error to the
// caller instead of retrying within the budget.
func TestClientRetriesDeadlineFromHungNode(t *testing.T) {
	// A one-node side fabric whose only purpose is to mint a real deadline
	// error from a hang.
	net := rdma.NewNetwork(nil)
	node := rdma.NewNode("m0")
	node.Alloc(1, 4096, false)
	net.AddNode(node)
	ctrl := faultrdma.NewController(1, 20*time.Millisecond)
	dial := ctrl.WrapDialer(func(name string) (rdma.Verbs, error) {
		return net.Dial("c0", name, rdma.DialOpts{})
	})
	v, err := dial("m0")
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	ctrl.Node("m0").Hang()
	defer ctrl.Node("m0").Resume()

	cl := newTestCluster(t, smallConfig())
	if err := cl.WaitForCoordinator(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	c := cl.Client()
	c.RetryBudget = 5 * time.Second

	attempts := 0
	err = c.do(func(st *kv.Store) error {
		attempts++
		if attempts == 1 {
			werr := v.Write(1, 0, []byte{1})
			if !errors.Is(werr, rdma.ErrDeadline) {
				t.Fatalf("hung write produced %v, want rdma.ErrDeadline", werr)
			}
			return werr
		}
		return nil
	})
	if err != nil {
		t.Fatalf("do() surfaced %v instead of retrying a transport deadline", err)
	}
	if attempts < 2 {
		t.Fatalf("attempts = %d, want a retry after the deadline error", attempts)
	}
}

// TestClientBackoffJitter is the regression test for lockstep retries: the
// sleep must be spread over [b/2, 3b/2) and clamped to the remaining budget
// so the final retry lands inside RetryBudget.
func TestClientBackoffJitter(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const b = 8 * time.Millisecond
	seen := make(map[time.Duration]bool)
	for i := 0; i < 1000; i++ {
		d := jitteredBackoff(b, time.Hour, rng)
		if d < b/2 || d >= 3*b/2 {
			t.Fatalf("jitteredBackoff = %v, outside [%v, %v)", d, b/2, 3*b/2)
		}
		seen[d] = true
	}
	if len(seen) < 100 {
		t.Fatalf("only %d distinct sleeps in 1000 draws — backoff is not jittered", len(seen))
	}
	if d := jitteredBackoff(16*time.Millisecond, time.Millisecond, rng); d != time.Millisecond {
		t.Fatalf("jitteredBackoff did not clamp to remaining budget: %v", d)
	}
}

// TestAmbiguousAfterSends: an op that reached a coordinator at least once
// and then exhausted its budget must report ErrAmbiguous (it may have
// committed), still matching ErrNoCoordinator for existing callers.
func TestAmbiguousAfterSends(t *testing.T) {
	cfg := smallConfig()
	cfg.FaultInjection = true
	cfg.OpDeadline = 40 * time.Millisecond
	cl := newTestCluster(t, cfg)
	if err := cl.WaitForCoordinator(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	c := cl.Client()
	if err := c.Put([]byte("warm"), []byte("up")); err != nil {
		t.Fatal(err)
	}

	for _, name := range cl.MemoryNodes() {
		cl.Faults().Node(name).Hang()
	}
	t.Cleanup(func() {
		for _, name := range cl.MemoryNodes() {
			cl.Faults().Node(name).Resume()
		}
	})

	c.RetryBudget = 400 * time.Millisecond
	err := c.Put([]byte("k"), []byte("v"))
	if !errors.Is(err, ErrAmbiguous) {
		t.Fatalf("got %v, want ErrAmbiguous after at least one send", err)
	}
	if !errors.Is(err, ErrNoCoordinator) {
		t.Fatalf("ErrAmbiguous must wrap ErrNoCoordinator; got %v", err)
	}
}

// TestNoCoordinatorWithoutSends: with every CPU node down before the op
// starts, the failure is definite — plain ErrNoCoordinator, not ambiguous.
func TestNoCoordinatorWithoutSends(t *testing.T) {
	cl := newTestCluster(t, smallConfig())
	if err := cl.WaitForCoordinator(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	cl.KillCPUNode(1)
	cl.KillCPUNode(2)

	c := cl.Client()
	c.RetryBudget = 200 * time.Millisecond
	err := c.Put([]byte("k"), []byte("v"))
	if !errors.Is(err, ErrNoCoordinator) {
		t.Fatalf("got %v, want ErrNoCoordinator", err)
	}
	if errors.Is(err, ErrAmbiguous) {
		t.Fatalf("op that never reached a coordinator reported ambiguous: %v", err)
	}
}

// TestClientRecordsHistory checks the instrumentation hooks end to end: a
// live client with a History recorder produces a linearizable history with
// the expected op kinds and outcomes.
func TestClientRecordsHistory(t *testing.T) {
	cl := newTestCluster(t, smallConfig())
	if err := cl.WaitForCoordinator(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	c := cl.Client()
	c.ClientID = 7
	c.History = linearize.NewRecorder()

	if err := c.Put([]byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if v, err := c.Get([]byte("k")); err != nil || string(v) != "v1" {
		t.Fatalf("get = %q, %v", v, err)
	}
	if _, err := c.Get([]byte("missing")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get missing = %v", err)
	}
	if err := c.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if err := c.PutBatch([]Pair{
		{Key: []byte("a"), Value: []byte("1")},
		{Key: []byte("k"), Value: nil}, // delete via batch
	}); err != nil {
		t.Fatal(err)
	}

	hist := c.History.History()
	if len(hist) != 6 {
		t.Fatalf("recorded %d ops, want 6: %+v", len(hist), hist)
	}
	for _, o := range hist {
		if o.ClientID != 7 {
			t.Fatalf("op missing client id: %+v", o)
		}
		if o.Ambiguous() {
			t.Fatalf("healthy-cluster op recorded as ambiguous: %+v", o)
		}
	}
	if rep := linearize.Check(hist, linearize.DefaultTimeout); rep.Result != linearize.Ok {
		t.Fatalf("recorded history: %v on key %q", rep.Result, rep.Key)
	}
}
