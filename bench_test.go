// Benchmarks that regenerate the paper's evaluation (§6), one per table or
// figure. Each prints the paper-relevant metrics via b.ReportMetric, so
// `go test -bench=. -benchmem` emits the series the paper charts. The
// cmd/siftbench harness runs the same experiments with full-size
// parameters and renders them as tables.
//
//	Figure 5  — throughput per workload mix, per system
//	Figure 6  — read/write latency at low load and at high load
//	Figure 7  — throughput vs provisioned cores (F=1 and F=2)
//	Figure 8  — backup pool size vs added recovery time
//	Table 2   — performance-normalized machine configs (costs)
//	Figures 9/10 — relative deployment cost vs Raft-R (F=1, F=2)
//	Figure 11 — throughput across a memory node failure + rejoin
//	Figure 12 — throughput across a coordinator failure
package sift_test

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/repro/sift/internal/backuppool"
	"github.com/repro/sift/internal/bench"
	"github.com/repro/sift/internal/cloudcost"
	"github.com/repro/sift/internal/deploy"
	"github.com/repro/sift/internal/kv"
	"github.com/repro/sift/internal/memnode"
	"github.com/repro/sift/internal/metrics"
	"github.com/repro/sift/internal/rdma"
	"github.com/repro/sift/internal/repmem"
	"github.com/repro/sift/internal/trace"
	"github.com/repro/sift/internal/workload"
)

// benchKeys keeps `go test -bench` laptop-friendly; cmd/siftbench scales to
// the paper's 1M keys.
const (
	benchKeys  = 2048
	benchValue = 992 // the paper's maximum value size
)

// newBenchSystem builds and populates a system, failing the benchmark on
// error.
func newBenchSystem(b *testing.B, kind bench.SystemKind, f int) bench.System {
	b.Helper()
	sys, err := bench.NewSystem(bench.SystemConfig{Kind: kind, F: f, Keys: benchKeys, ValueSize: benchValue})
	if err != nil {
		b.Fatal(err)
	}
	if err := bench.Populate(sys, benchKeys, benchValue); err != nil {
		sys.Close()
		b.Fatal(err)
	}
	b.Cleanup(sys.Close)
	return sys
}

// opLoop drives b.N operations of the given mix through sys in parallel
// and reports throughput.
func opLoop(b *testing.B, sys bench.System, mix workload.Mix) {
	b.Helper()
	var seq atomic.Int64
	b.SetParallelism(16) // closed-loop client count ≈ 16 × GOMAXPROCS
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		gen := workload.NewGenerator(workload.Config{
			Mix: mix, Keys: benchKeys, ValueSize: benchValue,
			ZipfTheta: 0.99, Seed: seq.Add(1),
		})
		for pb.Next() {
			op := gen.Next()
			if op.Read {
				sys.Get(op.Key) //nolint:errcheck — misses are fine
			} else {
				if err := sys.Put(op.Key, op.Value); err != nil {
					b.Error(err)
					return
				}
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "ops/sec")
}

// BenchmarkFigure5 reproduces Figure 5: throughput of EPaxos, Sift EC,
// Sift, and Raft-R across the four workload types.
func BenchmarkFigure5(b *testing.B) {
	kinds := []bench.SystemKind{bench.SystemEPaxos, bench.SystemSiftEC, bench.SystemSift, bench.SystemRaftR}
	for _, kind := range kinds {
		for _, mix := range workload.Mixes {
			b.Run(fmt.Sprintf("%s/%s", kind, mix.Name), func(b *testing.B) {
				sys := newBenchSystem(b, kind, 1)
				opLoop(b, sys, mix)
			})
		}
	}
}

// BenchmarkFigure6 reproduces Figure 6: read and write latency at low load
// (one client) and at high load, for Raft-R, Sift, and Sift EC. Median and
// p95 are reported in microseconds.
func BenchmarkFigure6(b *testing.B) {
	kinds := []bench.SystemKind{bench.SystemRaftR, bench.SystemSift, bench.SystemSiftEC}
	for _, kind := range kinds {
		for _, load := range []struct {
			name    string
			clients int
		}{{"1client", 1}, {"90pct-load", 8}} {
			for _, mixName := range []string{"read-only", "write-only"} {
				mix, _ := workload.MixByName(mixName)
				b.Run(fmt.Sprintf("%s/%s/%s", kind, mixName, load.name), func(b *testing.B) {
					sys := newBenchSystem(b, kind, 1)
					var hist metrics.Histogram
					gen := workload.NewGenerator(workload.Config{
						Mix: mix, Keys: benchKeys, ValueSize: benchValue, ZipfTheta: 0.99, Seed: 3,
					})
					// Background load for the high-load variant.
					stop := make(chan struct{})
					for w := 1; w < load.clients; w++ {
						go func(w int) {
							g := workload.NewGenerator(workload.Config{
								Mix: mix, Keys: benchKeys, ValueSize: benchValue, ZipfTheta: 0.99, Seed: int64(w) * 17,
							})
							for {
								select {
								case <-stop:
									return
								default:
								}
								op := g.Next()
								if op.Read {
									sys.Get(op.Key) //nolint:errcheck
								} else {
									sys.Put(op.Key, op.Value) //nolint:errcheck
								}
							}
						}(w)
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						op := gen.Next()
						t0 := time.Now()
						if op.Read {
							sys.Get(op.Key) //nolint:errcheck
						} else {
							sys.Put(op.Key, op.Value) //nolint:errcheck
						}
						hist.Record(time.Since(t0))
					}
					b.StopTimer()
					close(stop)
					b.ReportMetric(float64(hist.Percentile(50))/1e3, "p50-us")
					b.ReportMetric(float64(hist.Percentile(95))/1e3, "p95-us")
				})
			}
		}
	}
}

// BenchmarkFigure7 reproduces Figure 7: throughput under a read-heavy
// workload as the provisioned core count varies, for Sift, Sift EC, and
// Raft-R at F=1 and F=2.
func BenchmarkFigure7(b *testing.B) {
	kinds := []bench.SystemKind{bench.SystemRaftR, bench.SystemSift, bench.SystemSiftEC}
	// perOpCPU is calibrated so the sweep's plateau lands in a realistic
	// range; relative positions, not absolutes, are the result.
	perOp := map[bench.SystemKind]time.Duration{
		bench.SystemRaftR:  20 * time.Microsecond, // local reads, lean write path
		bench.SystemSift:   26 * time.Microsecond, // background applies + remote reads
		bench.SystemSiftEC: 31 * time.Microsecond, // plus encode/decode work
	}
	for _, f := range []int{1, 2} {
		for _, kind := range kinds {
			for _, cores := range []int{6, 8, 10, 12} {
				b.Run(fmt.Sprintf("F%d/%s/%dcores", f, kind, cores), func(b *testing.B) {
					sys := newBenchSystem(b, kind, f)
					limiter := bench.NewCPULimiter(cores, perOp[kind])
					var seq atomic.Int64
					mix := workload.ReadHeavy
					b.SetParallelism(16)
					b.ResetTimer()
					start := time.Now()
					b.RunParallel(func(pb *testing.PB) {
						gen := workload.NewGenerator(workload.Config{
							Mix: mix, Keys: benchKeys, ValueSize: benchValue,
							ZipfTheta: 0.99, Seed: seq.Add(1),
						})
						for pb.Next() {
							op := gen.Next()
							release := limiter.Acquire()
							if op.Read {
								sys.Get(op.Key) //nolint:errcheck
							} else {
								sys.Put(op.Key, op.Value) //nolint:errcheck
							}
							release()
						}
					})
					b.StopTimer()
					b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "ops/sec")
				})
			}
		}
	}
}

// BenchmarkFigure8 reproduces Figure 8: average added recovery time per
// fault versus backup pool size, over synthetic Google-style cluster
// traces.
func BenchmarkFigure8(b *testing.B) {
	for _, groups := range []int{10, 100, 500, 1000, 2000, 3000} {
		for _, backups := range []int{0, 2, 6, 12, 20} {
			b.Run(fmt.Sprintf("%dgroups/%dbackups", groups, backups), func(b *testing.B) {
				var total time.Duration
				for i := 0; i < b.N; i++ {
					events := trace.Generate(trace.Default(int64(i + 1)))
					res := backuppool.Run(backuppool.Config{
						Groups:  groups,
						Backups: backups,
						Seed:    int64(i)*31 + 7,
					}, events)
					total += res.AvgAddedRecovery()
				}
				b.ReportMetric(float64(total.Milliseconds())/float64(b.N), "added-recovery-ms/fault")
			})
		}
	}
}

// BenchmarkTable2 reports the hourly machine costs behind Table 2's
// performance-normalized configurations.
func BenchmarkTable2(b *testing.B) {
	for _, row := range cloudcost.Table2() {
		b.Run(fmt.Sprintf("%s/F%d", row.System, row.F), func(b *testing.B) {
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += row.CPU.Cost(cloudcost.AWS) + row.MemNode.Cost(cloudcost.AWS)
			}
			b.ReportMetric(row.CPU.Cost(cloudcost.AWS)*1000, "cpu-node-milli$/hr")
			b.ReportMetric(row.MemNode.Cost(cloudcost.AWS)*1000, "mem-node-milli$/hr")
			_ = sink
		})
	}
}

// BenchmarkFigure9And10 reproduces Figures 9 and 10: Sift deployment cost
// relative to Raft-R on AWS and GCP, for all four Sift variants, at F=1
// and F=2 (negative percentages are savings).
func BenchmarkFigure9And10(b *testing.B) {
	for _, f := range []int{1, 2} {
		rows, err := cloudcost.FigureSeries(f)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			b.Run(fmt.Sprintf("F%d/%s/%s", f, row.Provider, row.Label), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := cloudcost.FigureSeries(f); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(row.Relative, "relative-cost-pct")
			})
		}
	}
}

// BenchmarkFigure11 reproduces Figure 11: read-heavy throughput while a
// memory node fails, restarts, and is copied back into the group. It
// reports the throughput floor during recovery relative to steady state
// (the "dip") and the recovery duration.
func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tl, err := bench.MemoryNodeFailureTimeline(bench.FailureConfig{
			Keys: benchKeys, ValueSize: benchValue, Clients: 8,
			Steady: 800 * time.Millisecond, Outage: 500 * time.Millisecond,
			Observe: 1500 * time.Millisecond, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		steady, floor := dipStats(tl, "memory node killed", "memory node joins the system")
		if steady > 0 {
			b.ReportMetric(floor/steady*100, "recovery-floor-pct")
		}
		if join, ok := tl.Events["memory node joins the system"]; ok {
			restart := tl.Events["memory node restarted"]
			b.ReportMetric(float64((join - restart).Milliseconds()), "copyback-ms")
		}
	}
}

// BenchmarkFigure12 reproduces Figure 12: read-heavy throughput while the
// coordinator fails and a backup recovers the log and takes over. It
// reports the outage duration (kill → first post-recovery throughput).
func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tl, err := bench.CoordinatorFailureTimeline(bench.FailureConfig{
			Keys: benchKeys, ValueSize: benchValue, Clients: 8,
			Steady: 800 * time.Millisecond, Outage: 300 * time.Millisecond,
			Observe: 1500 * time.Millisecond, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		kill := tl.Events["coordinator killed"]
		rec := tl.Events["new coordinator completes log recovery"]
		b.ReportMetric(float64((rec - kill).Milliseconds()), "outage-ms")
	}
}

// BenchmarkPipelinedPut measures parallel Store.Put throughput against real
// TCP memory nodes at several closed-loop client counts. It exercises the
// transport's per-connection pipeline: every concurrent Put fans out to all
// three memory nodes over a single connection per node, so throughput at 64
// clients is bounded by how many operations the transport keeps in flight
// per connection.
func BenchmarkPipelinedPut(b *testing.B) {
	for _, clients := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("%dclients", clients), func(b *testing.B) {
			params := deploy.Params{
				F: 1, Keys: 1024, MaxValue: 128,
				KVWALSlots: 512, MemWALSlots: 512, MemWALSlotSize: 512,
			}
			kcfg, mcfg, err := params.Derive()
			if err != nil {
				b.Fatal(err)
			}
			// Enough background appliers that sustained throughput is bounded
			// by the transport, not by applier serialization.
			kcfg.ApplyShards = 32

			var memAddrs []string
			for i := 0; i < 3; i++ {
				node, err := memnode.New(fmt.Sprintf("bpp%d", i), mcfg.Layout())
				if err != nil {
					b.Fatal(err)
				}
				l, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(func() { l.Close() })
				go rdma.Serve(l, node)
				memAddrs = append(memAddrs, l.Addr().String())
			}
			mcfg.MemoryNodes = memAddrs
			mcfg.Dial = func(node string) (rdma.Verbs, error) {
				return rdma.DialTCP(node, rdma.DialOpts{Exclusive: []rdma.RegionID{memnode.ReplRegionID}})
			}

			mem, err := repmem.New(mcfg)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { mem.Close() })
			if err := mem.Recover(); err != nil {
				b.Fatal(err)
			}
			st, err := kv.New(mem, kcfg)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { st.Close() })

			const keySpace = 512
			keys := make([][]byte, keySpace)
			for i := range keys {
				keys[i] = []byte(fmt.Sprintf("pipeline-key-%04d", i))
			}
			value := make([]byte, 128)
			for i := range value {
				value[i] = byte(i)
			}

			var next atomic.Int64
			var wg sync.WaitGroup
			b.ResetTimer()
			start := time.Now()
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						n := next.Add(1)
						if n > int64(b.N) {
							return
						}
						if err := st.Put(keys[n%keySpace], value); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "ops/sec")
		})
	}
}

// dipStats computes steady-state throughput before the first event and the
// minimum throughput between the two events.
func dipStats(tl bench.FailureTimeline, fromEvent, toEvent string) (steady, floor float64) {
	from := tl.Events[fromEvent]
	to, ok := tl.Events[toEvent]
	if !ok {
		to = from + time.Second
	}
	var sum float64
	var n int
	floor = -1
	for _, p := range tl.Series {
		switch {
		case p.T < from:
			sum += p.Ops
			n++
		case p.T >= from && p.T <= to:
			if floor < 0 || p.Ops < floor {
				floor = p.Ops
			}
		}
	}
	if n > 0 {
		steady = sum / float64(n)
	}
	if floor < 0 {
		floor = 0
	}
	return steady, floor
}
