// Shared backup pool example (paper §5.2): several Sift groups each run a
// single dedicated coordinator; one small pool of stateless backup CPU
// nodes watches all of them. When coordinators die, pool workers win the
// CAS elections and take the groups over — G+B CPU nodes instead of
// (F+1)·G.
//
// Run with: go run ./examples/sharedbackups
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/repro/sift/internal/core"
	"github.com/repro/sift/internal/deploy"
	"github.com/repro/sift/internal/election"
	"github.com/repro/sift/internal/memnode"
	"github.com/repro/sift/internal/netsim"
	"github.com/repro/sift/internal/rdma"
)

const groups = 4

func main() {
	fabric := netsim.NewFabric(nil)
	network := rdma.NewNetwork(fabric)

	params := deploy.Params{F: 1, Keys: 512, MaxValue: 128, KVWALSlots: 128,
		MemWALSlots: 128, MemWALSlotSize: 1024}
	kcfg, mcfg, err := params.Derive()
	if err != nil {
		log.Fatal(err)
	}

	// Build G groups of 3 memory nodes each, plus one primary coordinator
	// per group — only ONE CPU node per group instead of F+1.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var poolGroups []core.PoolGroup
	primaries := make([]context.CancelFunc, groups)
	nodes := make([]*core.CPUNode, groups)

	nodeConfig := func(g int, id uint16) core.Config {
		memNames := make([]string, 3)
		for i := range memNames {
			memNames[i] = fmt.Sprintf("g%d-mem%d", g, i)
		}
		cpu := fmt.Sprintf("g%d-cpu%d", g, id)
		m := mcfg
		m.MemoryNodes = memNames
		m.Dial = func(node string) (rdma.Verbs, error) {
			return network.Dial(cpu, node, rdma.DialOpts{Exclusive: []rdma.RegionID{memnode.ReplRegionID}})
		}
		return core.Config{
			NodeID: id,
			Election: election.Config{
				MemoryNodes: memNames,
				AdminRegion: memnode.AdminRegionID,
				Dial: func(node string) (rdma.Verbs, error) {
					return network.Dial(cpu, node, rdma.DialOpts{})
				},
				HeartbeatInterval: 3 * time.Millisecond,
				ReadInterval:      3 * time.Millisecond,
				MissedBeats:       3,
				Seed:              int64(g)*100 + int64(id),
			},
			Memory: m,
			KV:     kcfg,
		}
	}

	for g := 0; g < groups; g++ {
		for i := 0; i < 3; i++ {
			node, err := memnode.New(fmt.Sprintf("g%d-mem%d", g, i), mcfg.Layout())
			if err != nil {
				log.Fatal(err)
			}
			network.AddNode(node)
		}
		pctx, pcancel := context.WithCancel(ctx)
		primaries[g] = pcancel
		nodes[g] = core.NewCPUNode(nodeConfig(g, 1))
		go nodes[g].Run(pctx)
		poolGroups = append(poolGroups, core.PoolGroup{
			Name:   fmt.Sprintf("group-%d", g),
			Config: nodeConfig(g, 0), // NodeID assigned by the pool
		})
	}

	// Wait for all primaries to coordinate, then write some data.
	for g := 0; g < groups; g++ {
		waitCoordinator(nodes[g])
		st := nodes[g].Store()
		for i := 0; i < 10; i++ {
			if err := st.Put([]byte(fmt.Sprintf("g%d-key%d", g, i)), []byte("v")); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("%d groups up, each with ONE dedicated coordinator (no per-group backups)\n", groups)

	// One pool of 2 backup workers watches all 4 groups: 4+2 CPU nodes
	// instead of 2×4.
	pool := core.NewPool(core.PoolConfig{Workers: 2, ProvisionDelay: 500 * time.Millisecond})
	go pool.Run(ctx, poolGroups)
	time.Sleep(50 * time.Millisecond) // let the watchers settle
	fmt.Printf("backup pool started: %d workers watching %d groups (G+B=%d CPU nodes vs (F+1)·G=%d)\n",
		pool.Free(), groups, groups+2, 2*groups)

	// Kill two coordinators "simultaneously".
	fmt.Println("\nkilling the coordinators of group-0 and group-2 ...")
	primaries[0]()
	primaries[2]()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && pool.Stats().Takeovers < 2 {
		time.Sleep(5 * time.Millisecond)
	}
	st := pool.Stats()
	fmt.Printf("pool handled %d failovers (%d takeovers); max wait for a worker: %v\n",
		st.Failovers, st.Takeovers, st.MaxWait.Round(time.Millisecond))
	if st.Takeovers < 2 {
		log.Fatal("pool failed to take over both groups")
	}

	// Replacement workers get provisioned behind the consumed ones.
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && pool.Stats().Provisioned < 2 {
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("replacement workers provisioned: %d (pool free: %d)\n",
		pool.Stats().Provisioned, pool.Free())
	fmt.Println("\nall groups are coordinated again; data written before the failures is intact.")
}

func waitCoordinator(n *core.CPUNode) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if n.Role() == core.Coordinator && n.Store() != nil {
			return
		}
		time.Sleep(time.Millisecond)
	}
	log.Fatal("no coordinator elected")
}
