// Erasure coding example: a Sift EC group stores Cauchy Reed–Solomon
// chunks instead of full replicas — per-node memory drops by a factor of
// F+1 — while still tolerating F memory node failures. This example shows
// the storage accounting, then kills a data-chunk node and reads through
// reconstruction.
//
// Run with: go run ./examples/erasure
package main

import (
	"fmt"
	"log"
	"time"

	sift "github.com/repro/sift"
)

func main() {
	const keys = 4096

	plain, err := sift.NewCluster(sift.Config{F: 1, Keys: keys})
	if err != nil {
		log.Fatal(err)
	}
	// A small cache makes the gets below actually reach the memory nodes,
	// demonstrating reconstruction (with the default 50% cache nearly every
	// get would be a coordinator-local cache hit).
	ec, err := sift.NewCluster(sift.Config{F: 1, Keys: keys, ErasureCoding: true, CacheFraction: 0.01})
	if err != nil {
		log.Fatal(err)
	}
	defer plain.Close()
	defer ec.Close()

	fmt.Println("Both groups tolerate F=1 memory node failure (3 memory nodes each).")
	fmt.Println("Sift replicates the materialized memory in full; Sift EC stores one")
	fmt.Println("chunk per node (k=2 data + 1 parity), so each node holds half the data.")
	fmt.Println("The write-ahead log stays unencoded on both, which is what makes a")
	fmt.Println("coordinator + quorum-member double failure survivable (paper §5.1).")
	fmt.Println()

	client := ec.Client()
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("doc-%04d", i)
		val := fmt.Sprintf("payload for document %04d", i)
		if err := client.Put([]byte(key), []byte(val)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("wrote 500 keys to the EC group")

	// Kill memory node 0 — a data-chunk owner, so reads of its half of every
	// block must reconstruct from the other data chunk + parity.
	victim := ec.MemoryNodes()[0]
	ec.KillMemoryNode(victim)
	fmt.Printf("killed memory node %s (a data-chunk owner)\n", victim)

	ok := 0
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("doc-%04d", i)
		v, err := client.Get([]byte(key))
		if err != nil {
			log.Fatalf("get %s: %v", key, err)
		}
		if string(v) == fmt.Sprintf("payload for document %04d", i) {
			ok++
		}
	}
	fmt.Printf("read back %d/500 keys correctly with one node down\n", ok)

	st := ec.Stats()
	fmt.Printf("reads that required erasure decoding: %d (of %d remote reads)\n",
		st.Memory.DecodedReads, st.Memory.RemoteReads)

	// Bring the node back: the coordinator rebuilds exactly the chunks the
	// node is responsible for and reintegrates it in the background.
	ec.RestartMemoryNode(victim)
	if err := ec.AwaitMemoryNodeRecovery(1, 15*time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("memory node %s rebuilt and rejoined\n", victim)
}
