// Multi-process deployment example: this program launches a complete Sift
// group as separate OS processes — three memnoded memory nodes serving
// one-sided RDMA over TCP, two siftd CPU nodes, and then acts as a client
// through the RPC protocol, including killing the coordinator process and
// watching the backup take over.
//
// It builds the daemons with `go build`, so run it from the repository
// root: go run ./examples/kvservice
package main

import (
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"github.com/repro/sift/internal/rpc"
)

// freePort asks the kernel for an unused TCP port.
func freePort() string {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	return l.Addr().String()
}

func main() {
	tmp, err := os.MkdirTemp("", "sift-kvservice-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)

	// Build the daemons.
	memnoded := filepath.Join(tmp, "memnoded")
	siftd := filepath.Join(tmp, "siftd")
	for _, b := range []struct{ out, pkg string }{
		{memnoded, "./cmd/memnoded"},
		{siftd, "./cmd/siftd"},
	} {
		cmd := exec.Command("go", "build", "-o", b.out, b.pkg)
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			log.Fatalf("building %s: %v (run from the repository root)", b.pkg, err)
		}
	}

	sizing := []string{"-keys", "2048", "-max-value", "256", "-kv-wal-slots", "512",
		"-mem-wal-slots", "256", "-mem-wal-slot-size", "1024"}

	// Start 2F+1 = 3 memory nodes.
	var memAddrs []string
	var procs []*exec.Cmd
	defer func() {
		for _, p := range procs {
			if p.Process != nil {
				p.Process.Kill()
			}
		}
	}()
	for i := 0; i < 3; i++ {
		addr := freePort()
		memAddrs = append(memAddrs, addr)
		cmd := exec.Command(memnoded, append([]string{"-addr", addr}, sizing...)...)
		cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
		if err := cmd.Start(); err != nil {
			log.Fatal(err)
		}
		procs = append(procs, cmd)
	}
	fmt.Printf("started 3 passive memory nodes: %s\n", strings.Join(memAddrs, ", "))
	time.Sleep(300 * time.Millisecond)

	// Start F+1 = 2 CPU nodes.
	memList := strings.Join(memAddrs, ",")
	var cpuAddrs []string
	var cpuProcs []*exec.Cmd
	for i := 1; i <= 2; i++ {
		addr := freePort()
		cpuAddrs = append(cpuAddrs, addr)
		args := append([]string{
			"-id", fmt.Sprint(i), "-listen", addr, "-mem", memList,
		}, sizing...)
		cmd := exec.Command(siftd, args...)
		cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
		if err := cmd.Start(); err != nil {
			log.Fatal(err)
		}
		procs = append(procs, cmd)
		cpuProcs = append(cpuProcs, cmd)
	}
	fmt.Printf("started 2 CPU nodes: %s\n", strings.Join(cpuAddrs, ", "))

	// Find the coordinator and use the KV API.
	coordIdx := waitCoordinator(cpuAddrs, 15*time.Second)
	fmt.Printf("coordinator: CPU node %d (%s)\n", coordIdx+1, cpuAddrs[coordIdx])

	client, err := rpc.Dial(cpuAddrs[coordIdx])
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		payload := rpc.EncodeKV([]byte(fmt.Sprintf("key%d", i)), []byte(fmt.Sprintf("val%d", i)))
		if _, err := client.Call(rpc.MethodPut, payload); err != nil {
			log.Fatalf("put: %v", err)
		}
	}
	v, err := client.Call(rpc.MethodGet, rpc.EncodeKV([]byte("key7"), nil))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote 50 keys over RPC; get key7 -> %q\n", v)
	client.Close()

	// Kill the coordinator PROCESS; the other siftd takes over.
	fmt.Println("killing the coordinator process ...")
	cpuProcs[coordIdx].Process.Kill()

	backupIdx := 1 - coordIdx
	deadline := time.Now().Add(20 * time.Second)
	for {
		if time.Now().After(deadline) {
			log.Fatal("backup never became coordinator")
		}
		if role := status(cpuAddrs[backupIdx]); role == "coordinator" {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	client2, err := rpc.Dial(cpuAddrs[backupIdx])
	if err != nil {
		log.Fatal(err)
	}
	defer client2.Close()
	v, err = client2.Call(rpc.MethodGet, rpc.EncodeKV([]byte("key7"), nil))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("backup CPU node recovered the log and serves: get key7 -> %q\n", v)
	if _, err := client2.Call(rpc.MethodPut, rpc.EncodeKV([]byte("after"), []byte("failover"))); err != nil {
		log.Fatal(err)
	}
	fmt.Println("post-failover write committed. done.")
}

func status(addr string) string {
	c, err := rpc.Dial(addr)
	if err != nil {
		return ""
	}
	defer c.Close()
	v, err := c.Call(rpc.MethodStatus, nil)
	if err != nil {
		return ""
	}
	return string(v)
}

func waitCoordinator(addrs []string, timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for i, a := range addrs {
			if status(a) == "coordinator" {
				return i
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	log.Fatal("no coordinator elected")
	return -1
}
