// Quickstart: an in-process Sift deployment — put/get/delete through the
// replicated key-value store, then a live coordinator failover with no
// client-visible data loss.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	sift "github.com/repro/sift"
)

func main() {
	// One group: F=1 → 3 passive memory nodes + 2 CPU nodes, joined by the
	// simulated one-sided RDMA fabric.
	cluster, err := sift.NewCluster(sift.Config{
		F:    1,
		Keys: 4096,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	fmt.Printf("cluster up: coordinator is CPU node %d, memory nodes %v\n",
		cluster.Coordinator(), cluster.MemoryNodes())

	client := cluster.Client()

	// Basic operations. Put returns once the update is committed on a
	// majority of memory nodes.
	if err := client.Put([]byte("greeting"), []byte("hello, sift")); err != nil {
		log.Fatal(err)
	}
	v, err := client.Get([]byte("greeting"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("get greeting -> %q\n", v)

	// Write a batch of keys.
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%03d", i)
		if err := client.Put([]byte(key), []byte(fmt.Sprintf("value-%03d", i))); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("wrote 100 keys")

	// Kill the coordinator. The backup CPU node detects the missing
	// heartbeats through the memory nodes (CPU nodes never talk to each
	// other), wins the CAS election, replays the write-ahead log, and takes
	// over. The client retries transparently.
	killed := cluster.KillCoordinator()
	fmt.Printf("killed coordinator (CPU node %d)\n", killed)

	start := time.Now()
	v, err = client.Get([]byte("key-042"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("get key-042 -> %q  (served %v after the kill, by CPU node %d)\n",
		v, time.Since(start).Round(time.Millisecond), cluster.Coordinator())

	// And writes keep working on the new coordinator.
	if err := client.Put([]byte("after"), []byte("failover")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("post-failover write committed")

	st := cluster.Stats()
	fmt.Printf("stats: %d puts, %d gets (%.0f%% cache hits), %d WAL commits\n",
		st.KV.Puts, st.KV.Gets,
		100*float64(st.KV.CacheHits)/float64(max(1, st.KV.CacheHits+st.KV.CacheMisses)),
		st.Memory.DirectWrites)
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
