package sift

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/repro/sift/internal/linearize"
	"github.com/repro/sift/internal/obs"
	"github.com/repro/sift/internal/workload"
)

// wanConfig builds the shared WAN chaos deployment: one memory node and the
// client path across a 40ms-RTT wide-area link, Gilbert–Elliott loss at the
// given stationary rate, and the loss-adaptive FEC transport on both paths.
func wanConfig(lossRate float64) Config {
	cfg := smallConfig()
	cfg.WAN = &WANConfig{
		RTT:       40 * time.Millisecond,
		Jitter:    time.Millisecond,
		LossRate:  lossRate,
		LossBurst: 8,
		Replica:   "mem2",
		ClientWAN: true,
	}
	return cfg
}

// countEvents scans the control-plane ring for events of one type about one
// node ("" matches any node).
func countEvents(cl *Cluster, typ, node string) int {
	n := 0
	for _, e := range cl.Events().Recent(obs.DefaultRingSize) {
		if e.Type == typ && (node == "" || e.Node == node) {
			n++
		}
	}
	return n
}

// dumpWANOnFailure leaves the WAN transport's counters next to a failing
// assertion, alongside the event ring.
func dumpWANOnFailure(t *testing.T, cl *Cluster) {
	t.Helper()
	dumpEventsOnFailure(t, cl)
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("wan transport at failure: %+v", cl.WANStats())
			t.Logf("degraded nodes at failure: %v", cl.DegradedMemoryNodes())
		}
	})
}

// runWANClients drives n instrumented clients with a mixed unique-value
// workload for the duration of disturb, records every op for linearizability
// checking, and returns the number of acknowledged puts (the throughput
// numerator for the degradation experiments).
func runWANClients(t *testing.T, cl *Cluster, n int, disturb func()) uint64 {
	t.Helper()
	rec := linearize.NewRecorder()
	stop := make(chan struct{})
	var puts atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := cl.Client()
			c.ClientID = id
			c.History = rec
			c.RetryBudget = 20 * time.Second
			gen := workload.NewGenerator(workload.Config{
				Mix: workload.Mixed, Keys: 8, ValueSize: 16,
				Seed: int64(3000 + id), UniqueValues: true,
				ClientID: id, DeleteRatio: 0.1,
			})
			for {
				select {
				case <-stop:
					return
				default:
				}
				op := gen.Next()
				var err error
				switch {
				case op.Read:
					_, err = c.Get(op.Key)
				case op.Delete:
					err = c.Delete(op.Key)
				default:
					if err = c.Put(op.Key, op.Value); err == nil {
						puts.Add(1)
					}
				}
				if err != nil && !errors.Is(err, ErrNotFound) && !errors.Is(err, ErrNoCoordinator) {
					t.Errorf("client %d: unexpected error %v", id, err)
					return
				}
			}
		}(i)
	}

	disturb()
	close(stop)
	wg.Wait()

	hist := rec.History()
	open := 0
	for _, o := range hist {
		if o.Ambiguous() {
			open++
		}
	}
	rep := linearize.Check(hist, linearize.DefaultTimeout)
	if rep.Result != linearize.Ok {
		var bad []linearize.Op
		for _, o := range hist {
			if o.Key == rep.Key {
				bad = append(bad, o)
			}
		}
		sort.Slice(bad, func(i, j int) bool { return bad[i].Invoke < bad[j].Invoke })
		for _, o := range bad {
			t.Logf("  c%-2d %-6s in=%q out=%q notFound=%v [%d, %d]",
				o.ClientID, o.Kind, o.In, o.Out, o.NotFound, o.Invoke, o.Return)
		}
		t.Fatalf("history of %d ops (%d open) over %d keys: %v on key %q",
			rep.Ops, open, rep.Keys, rep.Result, rep.Key)
	}
	t.Logf("linearized %d ops (%d open, %d acked puts) in %v", rep.Ops, open, puts.Load(), rep.Elapsed)
	return puts.Load()
}

// TestWANSteadyReplicaNeverSuspect: a steady 40ms-RTT memory node must not
// trip the gray-failure suspicion machinery under the WAN-profile defaults.
// The straggler detector may classify it degraded — sustained slowness served
// around — but the live→suspect→repair oscillation the degraded state exists
// to end must never start.
func TestWANSteadyReplicaNeverSuspect(t *testing.T) {
	if testing.Short() {
		t.Skip("wan run in -short mode")
	}
	cfg := wanConfig(0) // latency only: the replica is slow, never faulty
	cfg.WAN.ClientWAN = false
	cl := newTestCluster(t, cfg)
	dumpWANOnFailure(t, cl)
	c := cl.Client()
	c.RetryBudget = 20 * time.Second

	// Enough writes for the per-node latency EWMAs to converge and the
	// straggler check to run several times.
	for i := 0; i < 120; i++ {
		if err := c.Put([]byte{'k', byte(i % 16)}, []byte{byte(i)}); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		time.Sleep(2 * time.Millisecond)
	}

	replica := cfg.WAN.Replica
	if n := countEvents(cl, "node.suspect", replica); n != 0 {
		t.Fatalf("steady WAN replica was suspected %d times", n)
	}
	if s := cl.Stats().Memory; s.NodeSuspected != 0 || s.NodeFailures != 0 {
		t.Fatalf("suspicions=%d failures=%d for a healthy WAN deployment", s.NodeSuspected, s.NodeFailures)
	}
	switch st := healthState(cl, replica); st {
	case "live", "degraded":
		t.Logf("replica steady at %q after 120 writes (degraded transitions: %d)",
			st, cl.Stats().Memory.NodeDegraded)
	default:
		t.Fatalf("replica in state %q, want live or degraded", st)
	}
}

// TestChaosLinearizeWAN is the WAN-resilience acceptance test. Run one: a
// lossless 40ms-RTT wide-area deployment (client hop and one replica across
// the WAN) establishes the throughput baseline. Run two: the same deployment
// with 5% sustained Gilbert–Elliott loss on the WAN links and a forced
// coordinator failover mid-run. The lossy run must linearize, must never
// suspect the steady WAN replica, must keep its degraded-state transitions
// bounded (no flapping), and must hold at least 50% of the lossless
// baseline's put throughput — the FEC transport absorbing the loss instead
// of surfacing it as timeouts.
func TestChaosLinearizeWAN(t *testing.T) {
	if testing.Short() {
		t.Skip("wan chaos run in -short mode")
	}
	const clients = 8

	run := func(lossRate float64, window time.Duration, failover bool) (puts uint64, cl *Cluster) {
		cl = newTestCluster(t, wanConfig(lossRate))
		dumpWANOnFailure(t, cl)
		if err := cl.WaitForCoordinator(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		puts = runWANClients(t, cl, clients, func() {
			if !failover {
				time.Sleep(window)
				return
			}
			time.Sleep(window / 3)
			if _, err := cl.ForceFailover(50, 15*time.Second); err != nil {
				t.Error(err)
			}
			time.Sleep(window - window/3)
		})
		return puts, cl
	}

	baselineWindow := 5 * time.Second
	lossyWindow := 8 * time.Second

	basePuts, baseCl := run(0, baselineWindow, false)
	if basePuts == 0 {
		t.Fatal("lossless baseline made no progress")
	}
	baseCl.Close()

	lossyPuts, cl := run(0.05, lossyWindow, true)
	replica := cl.cfg.WAN.Replica

	// Zero suspicion flaps of the steady WAN replica, across the failover.
	if n := countEvents(cl, "node.suspect", replica); n != 0 {
		t.Fatalf("WAN replica suspected %d times under sustained loss", n)
	}
	// Degradation is expected — once per coordinator term that observes
	// enough samples — but must not flap. Two terms ran here.
	if d := countEvents(cl, "node.degraded", replica); d > 4 {
		t.Fatalf("WAN replica degraded %d times: state is flapping", d)
	}
	// The FEC layer must actually be carrying the loss.
	ws := cl.WANStats()
	if ws.ShardsLost == 0 {
		t.Fatalf("no shards lost at 5%% loss — impairment not wired: %+v", ws)
	}
	if ws.FECRecovered == 0 {
		t.Fatalf("no flights recovered via parity at 5%% loss: %+v", ws)
	}

	baseRate := float64(basePuts) / baselineWindow.Seconds()
	lossyRate := float64(lossyPuts) / lossyWindow.Seconds()
	t.Logf("put throughput: baseline %.1f/s, 5%%-loss+failover %.1f/s (%.0f%%); wan stats %+v; degraded=%v",
		baseRate, lossyRate, 100*lossyRate/baseRate, ws, cl.DegradedMemoryNodes())
	if lossyRate < 0.5*baseRate {
		t.Fatalf("put throughput %.1f/s under loss is below 50%% of the %.1f/s lossless baseline",
			lossyRate, baseRate)
	}
}
