package sift

import (
	"errors"
	"time"

	"github.com/repro/sift/internal/kv"
	"github.com/repro/sift/internal/repmem"
)

// Client is a handle for issuing key-value operations against the cluster.
// It routes every request to the current coordinator and transparently
// retries across coordinator failovers (a request that raced a failover is
// retried against the new coordinator; committed effects are never lost).
// Clients are safe for concurrent use.
type Client struct {
	cluster *Cluster
	// RetryBudget bounds how long an operation may wait across failovers
	// (default 10s).
	RetryBudget time.Duration
}

func (c *Client) budget() time.Duration {
	if c.RetryBudget > 0 {
		return c.RetryBudget
	}
	return 10 * time.Second
}

// retriable reports whether an error indicates a coordinator transition
// (as opposed to a caller mistake), so the operation should be retried
// against the next coordinator.
func retriable(err error) bool {
	return errors.Is(err, kv.ErrClosed) ||
		errors.Is(err, repmem.ErrFenced) ||
		errors.Is(err, repmem.ErrClosed) ||
		errors.Is(err, repmem.ErrNoQuorum)
}

// do runs op against the current coordinator, retrying across failovers
// with exponential backoff (bounded), so a herd of waiting clients does not
// starve the very takeover it is waiting for.
func (c *Client) do(op func(*kv.Store) error) error {
	deadline := time.Now().Add(c.budget())
	backoff := time.Millisecond
	for {
		st := c.cluster.coordinatorStore()
		if st != nil {
			err := op(st)
			if err == nil || !retriable(err) {
				return err
			}
		}
		if time.Now().After(deadline) {
			return ErrNoCoordinator
		}
		time.Sleep(backoff)
		if backoff < 16*time.Millisecond {
			backoff *= 2
		}
	}
}

// Put stores value under key. It returns once the update is committed on a
// majority of memory nodes.
func (c *Client) Put(key, value []byte) error {
	return c.do(func(st *kv.Store) error { return st.Put(key, value) })
}

// Get returns the value stored under key, or ErrNotFound.
func (c *Client) Get(key []byte) ([]byte, error) {
	var out []byte
	err := c.do(func(st *kv.Store) error {
		v, err := st.Get(key)
		if err != nil {
			return err
		}
		out = v
		return nil
	})
	if errors.Is(err, kv.ErrNotFound) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Delete removes key. Deleting a missing key is not an error.
func (c *Client) Delete(key []byte) error {
	return c.do(func(st *kv.Store) error { return st.Delete(key) })
}

// Pair is one update in a PutBatch; a nil Value deletes the key.
type Pair = kv.Pair

// PutBatch commits several updates atomically: they occupy one log entry,
// so a coordinator failure replays all of them or none, and no conflicting
// write interleaves between them (paper §3.3.2's multi-write commit). The
// whole batch must fit in one log slot — use it for a handful of related
// small updates, not bulk loading.
func (c *Client) PutBatch(pairs []Pair) error {
	return c.do(func(st *kv.Store) error { return st.PutBatch(pairs) })
}
