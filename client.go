package sift

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"sync/atomic"
	"time"

	"github.com/repro/sift/internal/kv"
	"github.com/repro/sift/internal/linearize"
	"github.com/repro/sift/internal/rdma"
	"github.com/repro/sift/internal/repmem"
)

// Client is a handle for issuing key-value operations against the cluster.
// It routes every request to the current coordinator and transparently
// retries across coordinator failovers (a request that raced a failover is
// retried against the new coordinator; committed effects are never lost).
// Clients are safe for concurrent use.
type Client struct {
	cluster *Cluster
	// RetryBudget bounds how long an operation may wait across failovers
	// (default 10s).
	RetryBudget time.Duration
	// ClientID labels this client's operations in the recorded History.
	ClientID int
	// History, when non-nil, records every operation's invocation and
	// outcome — including ambiguous ones — for linearizability checking.
	History *linearize.Recorder
}

func (c *Client) budget() time.Duration {
	if c.RetryBudget > 0 {
		return c.RetryBudget
	}
	return 10 * time.Second
}

// retriable reports whether an error indicates a coordinator transition or
// transport fault (as opposed to a caller mistake), so the operation should
// be retried against the next coordinator. Transport deadline/teardown
// errors are included even though repmem normally folds them into
// ErrNoQuorum: an op that races a coordinator hang can still surface one
// raw, and it must not reach the caller when retry budget remains.
func retriable(err error) bool {
	return errors.Is(err, kv.ErrClosed) ||
		errors.Is(err, repmem.ErrFenced) ||
		errors.Is(err, repmem.ErrClosed) ||
		errors.Is(err, repmem.ErrNoQuorum) ||
		errors.Is(err, rdma.ErrDeadline) ||
		errors.Is(err, rdma.ErrClosed)
}

// jitteredBackoff spreads b uniformly over [b/2, 3b/2) — same scheme as
// internal/repmem's redialer — and caps the sleep at remaining, so the herd
// desynchronizes and the final retry still lands inside the budget instead
// of sleeping through it. A nil rng uses the process-global source.
func jitteredBackoff(b, remaining time.Duration, rng *rand.Rand) time.Duration {
	var d time.Duration
	if rng != nil {
		d = b/2 + time.Duration(rng.Int63n(int64(b)))
	} else {
		d = b/2 + time.Duration(rand.Int63n(int64(b)))
	}
	if d > remaining {
		d = remaining
	}
	return d
}

// do runs op against the current coordinator with a fresh budget's worth of
// wall clock.
func (c *Client) do(op func(*kv.Store) error) error {
	return c.doUntil(time.Now().Add(c.budget()), op)
}

// doWAN is do with the simulated client↔coordinator WAN legs charged around
// each attempt: the request leg before the store operation, the response leg
// after it. A leg that exhausts its flight retry budget surfaces an error
// wrapping rdma.ErrDeadline, so the normal failover retry loop re-sends it —
// exactly how a real client rides out a lossy wide-area path. On a LAN
// cluster (no Config.WAN, or WAN without ClientWAN) it is plain do.
func (c *Client) doWAN(reqSize, respSize int, op func(*kv.Store) error) error {
	w := c.cluster.wan
	if w == nil || w.client == nil {
		return c.do(op)
	}
	return c.do(func(st *kv.Store) error {
		if err := w.clientLeg(reqSize); err != nil {
			return err
		}
		if err := op(st); err != nil {
			return err
		}
		return w.clientLeg(respSize)
	})
}

// doUntil runs op against the current coordinator, retrying across
// failovers with jittered exponential backoff until the absolute deadline.
// When the deadline expires it returns ErrAmbiguous if at least one attempt
// reached a coordinator (the op may have committed) and plain
// ErrNoCoordinator if none did.
//
// Taking an absolute deadline rather than a budget is what lets fan-out
// callers (ShardClient) share one wall-clock budget across every per-group
// sub-operation: each sub-op clamps to the remaining total instead of
// multiplying the budget by the number of groups.
func (c *Client) doUntil(deadline time.Time, op func(*kv.Store) error) error {
	backoff := time.Millisecond
	sent := false
	cm := c.cluster.cm
	for {
		st := c.cluster.coordinatorStore()
		if st != nil {
			err := op(st)
			if err == nil || !retriable(err) {
				return err
			}
			sent = true
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			if sent {
				cm.ambiguous.Inc()
				return ErrAmbiguous
			}
			cm.noCoord.Inc()
			return ErrNoCoordinator
		}
		cm.retries.Inc()
		time.Sleep(jitteredBackoff(backoff, remaining, nil))
		if backoff < 16*time.Millisecond {
			backoff *= 2
		}
	}
}

// finishWrite resolves a recorded put/delete against its outcome. A write
// whose fate is unknown stays in the history open-ended; only errors that
// guarantee the op never reached the log discard it.
func finishWrite(p *linearize.Pending, err error) {
	switch {
	case err == nil:
		p.Commit("", false)
	case errors.Is(err, ErrAmbiguous):
		p.Ambiguous()
	case errors.Is(err, ErrNoCoordinator), errors.Is(err, kv.ErrTooLarge):
		p.Discard()
	default:
		p.Ambiguous()
	}
}

// finishGet resolves a recorded get. Failed reads carry no information and
// leave the history.
func finishGet(p *linearize.Pending, out []byte, err error) {
	switch {
	case err == nil:
		p.Commit(string(out), false)
	case errors.Is(err, ErrNotFound):
		p.Commit("", true)
	default:
		p.Discard()
	}
}

// Put stores value under key. It returns once the update is committed on a
// majority of memory nodes.
func (c *Client) Put(key, value []byte) error {
	p := c.History.Invoke(c.ClientID, linearize.KindPut, string(key), string(value))
	start := time.Now()
	err := c.doWAN(wanOpHeader+len(key)+len(value), wanOpHeader,
		func(st *kv.Store) error { return st.Put(key, value) })
	c.cluster.cm.putLat.Record(time.Since(start))
	finishWrite(p, err)
	return err
}

// Get returns the value stored under key, or ErrNotFound. With
// Config.BackupReads the read is first offered to a follower CPU node
// holding a read lease; only found values are served from backups, so a
// miss (or any backup-side anomaly) transparently falls back to the
// coordinator.
func (c *Client) Get(key []byte) ([]byte, error) {
	p := c.History.Invoke(c.ClientID, linearize.KindGet, string(key), "")
	var out []byte
	start := time.Now()
	if v, ok := c.cluster.wanBackupGet(key); ok {
		c.cluster.cm.getLat.Record(time.Since(start))
		finishGet(p, v, nil)
		return v, nil
	}
	err := c.doWAN(wanOpHeader+len(key), wanOpHeader+c.cluster.cfg.MaxValueSize,
		func(st *kv.Store) error {
			v, err := st.Get(key)
			if err != nil {
				return err
			}
			out = v
			return nil
		})
	c.cluster.cm.getLat.Record(time.Since(start))
	if errors.Is(err, kv.ErrNotFound) {
		err = ErrNotFound
	}
	finishGet(p, out, err)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Delete removes key. Deleting a missing key is not an error.
func (c *Client) Delete(key []byte) error {
	p := c.History.Invoke(c.ClientID, linearize.KindDelete, string(key), "")
	start := time.Now()
	err := c.doWAN(wanOpHeader+len(key), wanOpHeader,
		func(st *kv.Store) error { return st.Delete(key) })
	c.cluster.cm.deleteLat.Record(time.Since(start))
	finishWrite(p, err)
	return err
}

// Pair is one update in a PutBatch; a nil Value deletes the key.
type Pair = kv.Pair

// PutBatch commits several updates atomically: they occupy one log entry,
// so a coordinator failure replays all of them or none, and no conflicting
// write interleaves between them (paper §3.3.2's multi-write commit). The
// whole batch must fit in one log slot — use it for a handful of related
// small updates, not bulk loading.
//
// History records each pair as its own per-key write (the per-key checker
// cannot express cross-key atomicity; see internal/linearize).
func (c *Client) PutBatch(pairs []Pair) error {
	var ps []*linearize.Pending
	if c.History != nil {
		ps = make([]*linearize.Pending, 0, len(pairs))
		for _, pr := range pairs {
			if pr.Value == nil {
				ps = append(ps, c.History.Invoke(c.ClientID, linearize.KindDelete, string(pr.Key), ""))
			} else {
				ps = append(ps, c.History.Invoke(c.ClientID, linearize.KindPut, string(pr.Key), string(pr.Value)))
			}
		}
	}
	start := time.Now()
	// One token spans every retry of this batch: a retry whose predecessor
	// was durable but unacked (ambiguous failure, possibly across a
	// coordinator failover) dedups server-side instead of applying twice.
	tok := newBatchToken()
	reqSize := wanOpHeader
	for _, pr := range pairs {
		reqSize += len(pr.Key) + len(pr.Value)
	}
	err := c.doWAN(reqSize, wanOpHeader,
		func(st *kv.Store) error { return st.PutBatchIdem(tok, pairs) })
	c.cluster.cm.batchLat.Record(time.Since(start))
	for _, p := range ps {
		finishWrite(p, err)
	}
	return err
}

// batchTokenSeq makes in-process batch tokens unique; the random half keeps
// tokens from colliding across client processes sharing a cluster.
var batchTokenSeq atomic.Uint32

// newBatchToken returns a fresh 8-byte idempotency token. 8 bytes fits any
// usable MaxKeySize (tokens travel in a record's key field).
func newBatchToken() []byte {
	tok := make([]byte, 8)
	binary.LittleEndian.PutUint32(tok[:4], rand.Uint32())
	binary.LittleEndian.PutUint32(tok[4:], batchTokenSeq.Add(1))
	return tok
}
