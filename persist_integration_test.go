package sift

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/repro/sift/internal/persist"
)

// TestPersistDirSurvivesFullClusterLoss covers the §3.5 persistence option:
// with PersistDir set, committed updates reach a durable store that
// survives the loss of every (volatile) memory node — the failure mode
// plain Sift cannot survive.
func TestPersistDirSurvivesFullClusterLoss(t *testing.T) {
	dir := t.TempDir()
	cfg := smallConfig()
	cfg.PersistDir = dir

	cl := newTestCluster(t, cfg)
	c := cl.Client()
	for i := 0; i < 30; i++ {
		if err := c.Put([]byte(fmt.Sprintf("p%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.Delete([]byte("p5"))

	// Wait for the background persistence thread to drain (bounded by the
	// KV log: all committed entries are applied before slots recycle).
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := cl.Stats()
		if st.KV.Applies >= 30 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	cl.Close() // total cluster loss: every memory node's DRAM is gone

	db, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 30; i++ {
		if i == 5 {
			continue
		}
		v, ok := db.Get([]byte(fmt.Sprintf("p%d", i)))
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("p%d: %q ok=%v", i, v, ok)
		}
	}
	if _, ok := db.Get([]byte("p5")); ok {
		t.Fatal("deleted key persisted")
	}
}

// TestPersistDirReopen verifies a second cluster can be started against the
// same directory (e.g. to repopulate a fresh group from the snapshot).
func TestPersistDirReopen(t *testing.T) {
	dir := t.TempDir()
	cfg := smallConfig()
	cfg.PersistDir = dir
	cl := newTestCluster(t, cfg)
	if err := cl.Client().Put([]byte("x"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	cl.Close()

	cl2, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	// The new cluster's memory starts empty (fresh memory nodes) but the
	// persistent DB still holds the old state and keeps receiving updates.
	if err := cl2.Client().Put([]byte("y"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && cl2.Stats().KV.Applies < 1 {
		time.Sleep(2 * time.Millisecond)
	}
	cl2.Close()

	db, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if v, ok := db.Get([]byte("x")); !ok || string(v) != "1" {
		t.Fatalf("x: %q ok=%v", v, ok)
	}
	if v, ok := db.Get([]byte("y")); !ok || string(v) != "2" {
		t.Fatalf("y: %q ok=%v", v, ok)
	}
}

// TestPersistDirBadPath surfaces persistence setup errors at NewCluster.
func TestPersistDirBadPath(t *testing.T) {
	cfg := smallConfig()
	cfg.PersistDir = "/dev/null/not-a-dir"
	_, err := NewCluster(cfg)
	if err == nil {
		t.Fatal("NewCluster with unusable PersistDir should fail")
	}
	if !strings.Contains(err.Error(), "persistence") {
		t.Fatalf("error should mention persistence: %v", err)
	}
}
