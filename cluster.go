package sift

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/repro/sift/internal/core"
	"github.com/repro/sift/internal/deploy"
	"github.com/repro/sift/internal/election"
	"github.com/repro/sift/internal/faultrdma"
	"github.com/repro/sift/internal/kv"
	"github.com/repro/sift/internal/memnode"
	"github.com/repro/sift/internal/netsim"
	"github.com/repro/sift/internal/obs"
	"github.com/repro/sift/internal/persist"
	"github.com/repro/sift/internal/rdma"
	"github.com/repro/sift/internal/repmem"
)

// Cluster is an in-process Sift deployment: 2F+1 passive memory nodes and a
// set of CPU nodes joined by a simulated RDMA fabric. It exposes a client
// API, failure injection for experiments, and operational introspection.
type Cluster struct {
	cfg  Config
	kcfg kv.Config
	mcfg repmem.Config

	fabric  *netsim.Fabric
	network *rdma.Network
	faults  *faultrdma.Controller // nil unless cfg.FaultInjection
	wan     *wanState             // nil unless cfg.WAN

	memNames []string

	persistDB *persist.DB

	// Observability surface (see obs.go): registry, event ring, and the
	// cross-term latency hooks shared by every coordinator incarnation.
	reg     *obs.Registry
	events  *obs.Ring
	latency *repmem.LatencyHooks
	cm      *clientMetrics

	mu      sync.Mutex
	runners map[uint16]*cpuRunner
	closed  bool

	gaugeMu    sync.Mutex
	nodeGauges map[string]bool // per-node gauges registered (reconfig adds more)

	backupRR atomic.Uint64 // rotates lease reads across follower CPU nodes
}

// cpuRunner tracks one CPU node's lifetime.
type cpuRunner struct {
	id     uint16
	node   *core.CPUNode
	cancel context.CancelFunc
	done   chan struct{}
}

// NewCluster builds and starts a deployment. It blocks until a coordinator
// has been elected (bounded by a few seconds) so the returned cluster is
// immediately usable.
func NewCluster(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := cfg.withDefaults()

	var lat netsim.LatencyModel
	switch c.Latency {
	case RDMALatency:
		lat = netsim.RDMADefault()
	case TCPLatency:
		lat = netsim.TCPDefault()
	default:
		lat = netsim.NoLatency{}
	}
	fabric := netsim.NewFabric(lat)
	network := rdma.NewNetwork(fabric)

	kcfg, mcfg, err := deploy.Params{
		F:              c.F,
		EC:             c.ErasureCoding,
		Keys:           c.Keys,
		MaxKey:         c.MaxKeySize,
		MaxValue:       c.MaxValueSize,
		CacheFraction:  c.CacheFraction,
		LoadFactor:     c.IndexLoadFactor,
		KVWALSlots:     c.KVWALSlots,
		MemWALSlots:    c.MemWALSlots,
		MemWALSlotSize: c.MemWALSlotSize,
		NoIntegrity:    c.NoIntegrity,
	}.Derive()
	if err != nil {
		return nil, err
	}

	mcfg.SuspectAfter = c.SuspectAfter
	mcfg.DeadAfter = c.DeadAfter
	mcfg.StragglerFactor = c.StragglerFactor
	mcfg.StragglerMinLatency = c.StragglerMinLatency
	mcfg.StragglerMinSamples = c.StragglerMinSamples
	mcfg.SuspectProbeLimit = c.SuspectProbeLimit
	mcfg.DegradeExitProbes = c.DegradeExitProbes
	if c.BackupReads {
		// Lease soundness needs acks to imply visibility: writes wait for
		// their apply, and after a node exclusion acks hold until every
		// backup's membership view (≤ LeaseWindow old at use) has rotated.
		kcfg.SyncApply = true
		kcfg.AckHold = c.LeaseWindow + c.ReadInterval
	}
	cl := &Cluster{
		cfg:     c,
		kcfg:    kcfg,
		mcfg:    mcfg,
		fabric:  fabric,
		network: network,
		runners: make(map[uint16]*cpuRunner),
	}
	if c.FaultInjection {
		cl.faults = faultrdma.NewController(c.Seed, c.OpDeadline)
	}
	if c.PersistDir != "" {
		db, err := persist.Open(c.PersistDir, persist.Options{Sync: true, CompactThreshold: 4 * kcfg.WALSlots})
		if err != nil {
			return nil, fmt.Errorf("sift: persistence: %w", err)
		}
		cl.persistDB = db
		cl.kcfg.Persist = db
	}

	for i := 0; i < 2*c.F+1; i++ {
		name := fmt.Sprintf("mem%d", i)
		node, err := memnode.New(name, mcfg.Layout())
		if err != nil {
			return nil, err
		}
		network.AddNode(node)
		cl.memNames = append(cl.memNames, name)
	}
	mcfg.MemoryNodes = cl.memNames
	cl.mcfg = mcfg
	if c.WAN != nil {
		if err := cl.initWAN(); err != nil {
			return nil, err
		}
	}
	cl.initObs() // after memNames and WAN state exist, before CPU nodes start

	for i := 0; i < c.CPUNodes; i++ {
		cl.startCPUNodeLocked(uint16(i + 1))
	}

	if err := cl.WaitForCoordinator(5 * time.Second); err != nil {
		cl.Close()
		return nil, err
	}
	return cl, nil
}

// nodeConfig builds one CPU node's configuration.
func (cl *Cluster) nodeConfig(id uint16) core.Config {
	cpuName := fmt.Sprintf("cpu%d", id)
	mcfg := cl.mcfg
	memDial := func(node string) (rdma.Verbs, error) {
		return cl.network.Dial(cpuName, node, rdma.DialOpts{
			Exclusive:  []rdma.RegionID{memnode.ReplRegionID},
			OpDeadline: cl.cfg.OpDeadline,
		})
	}
	electDial := func(node string) (rdma.Verbs, error) {
		return cl.network.Dial(cpuName, node, rdma.DialOpts{OpDeadline: cl.cfg.OpDeadline})
	}
	backupDial := func(node string) (rdma.Verbs, error) {
		return cl.network.Dial(cpuName, node, rdma.DialOpts{
			ReadOnly:   []rdma.RegionID{memnode.ReplRegionID},
			OpDeadline: cl.cfg.OpDeadline,
		})
	}
	if cl.faults != nil {
		memDial = cl.faults.WrapDialer(memDial)
		electDial = cl.faults.WrapDialer(electDial)
		backupDial = cl.faults.WrapDialer(backupDial)
	}
	if cl.wan != nil {
		// WAN wraps outermost: a dropped or delayed op still pays the
		// wide-area flight time before any injected fault can act on it.
		memDial = cl.wrapWANDial(cpuName, memDial)
		electDial = cl.wrapWANDial(cpuName, electDial)
		backupDial = cl.wrapWANDial(cpuName, backupDial)
	}
	mcfg.Dial = memDial
	mcfg.Events = cl.events
	mcfg.Latency = cl.latency
	return core.Config{
		NodeID: id,
		Election: election.Config{
			MemoryNodes:       cl.memNames,
			AdminRegion:       memnode.AdminRegionID,
			AdminOffset:       memnode.AdminWordOffset,
			Dial:              electDial,
			HeartbeatInterval: cl.cfg.HeartbeatInterval,
			ReadInterval:      cl.cfg.ReadInterval,
			MissedBeats:       cl.cfg.MissedBeats,
			Seed:              cl.cfg.Seed + int64(id)*7919,
		},
		Memory:               mcfg,
		KV:                   cl.kcfg,
		NodeRecoveryInterval: cl.cfg.NodeRecoveryInterval,
		ScrubInterval:        cl.cfg.ScrubInterval,
		BackupReads:          cl.cfg.BackupReads,
		LeaseWindow:          cl.cfg.LeaseWindow,
		BackupDial:           backupDial,
		Events:               cl.events,
	}
}

// backupGet attempts a lease-based read on a follower CPU node, rotating
// across the running followers. ok is false when no follower could serve it
// (no lease, read anomaly, or key not proven present) — the caller falls
// back to the coordinator path.
func (cl *Cluster) backupGet(key []byte) ([]byte, bool) {
	if !cl.cfg.BackupReads {
		return nil, false
	}
	cl.mu.Lock()
	nodes := make([]*core.CPUNode, 0, len(cl.runners))
	for _, r := range cl.runners {
		nodes = append(nodes, r.node)
	}
	cl.mu.Unlock()
	if len(nodes) == 0 {
		return nil, false
	}
	tried := false
	start := int(cl.backupRR.Add(1))
	for k := 0; k < len(nodes); k++ {
		n := nodes[(start+k)%len(nodes)]
		if n.Role() != core.Follower {
			continue
		}
		tried = true
		v, err := n.BackupGet(key)
		if err == nil {
			cl.cm.backupGets.Inc()
			return v, true
		}
		if errors.Is(err, core.ErrNoLease) {
			cl.cm.leaseRejects.Inc()
		}
	}
	if tried {
		cl.cm.backupFallbacks.Inc()
	}
	return nil, false
}

// startCPUNodeLocked launches CPU node id; caller holds cl.mu or is in
// NewCluster before publication.
func (cl *Cluster) startCPUNodeLocked(id uint16) {
	ctx, cancel := context.WithCancel(context.Background())
	node := core.NewCPUNode(cl.nodeConfig(id))
	r := &cpuRunner{id: id, node: node, cancel: cancel, done: make(chan struct{})}
	go func() {
		defer close(r.done)
		node.Run(ctx)
	}()
	cl.runners[id] = r
}

// Client returns a client handle. Clients are cheap and share the cluster.
func (cl *Cluster) Client() *Client { return &Client{cluster: cl} }

// coordinator returns the current coordinator's store, if any.
func (cl *Cluster) coordinatorStore() *kv.Store {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	for _, r := range cl.runners {
		if r.node.Role() == core.Coordinator {
			if st := r.node.Store(); st != nil {
				return st
			}
		}
	}
	return nil
}

// Coordinator returns the coordinating CPU node's id, or 0 when no
// coordinator is currently elected.
func (cl *Cluster) Coordinator() uint16 {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	for id, r := range cl.runners {
		if r.node.Role() == core.Coordinator && r.node.Store() != nil {
			return id
		}
	}
	return 0
}

// WaitForCoordinator blocks until a coordinator is serving.
func (cl *Cluster) WaitForCoordinator(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cl.coordinatorStore() != nil {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return ErrNoCoordinator
}

// Faults returns the fault-injection controller, or nil when the cluster
// was built without Config.FaultInjection. Controller.Node(name) scopes
// injections to one memory node.
func (cl *Cluster) Faults() *faultrdma.Controller { return cl.faults }

// SetLinkLatency replaces the fabric's latency model with a fixed
// base-plus-per-byte cost on every link, taking effect for subsequent
// transfers. Use it to move a running cluster between latency regimes
// (e.g. RDMA-class vs. TCP-class links) in scaling experiments.
func (cl *Cluster) SetLinkLatency(base, perByte time.Duration) {
	cl.fabric.SetLatency(netsim.FixedLatency{Base: base, PerByte: perByte})
}

// Health reports the coordinator's per-memory-node gray-failure view
// (nil when no coordinator is serving).
func (cl *Cluster) Health() []repmem.NodeHealth {
	if st := cl.coordinatorStore(); st != nil {
		return st.MemoryHealth()
	}
	return nil
}

// ScrubNow forces one full synchronous integrity sweep on the current
// coordinator, returning what it found and fixed. It does not wait for the
// background scrub cadence.
func (cl *Cluster) ScrubNow() (repmem.ScrubReport, error) {
	st := cl.coordinatorStore()
	if st == nil {
		return repmem.ScrubReport{}, ErrNoCoordinator
	}
	return st.Memory().ScrubOnce()
}

// MemoryNodes returns the current memory node names (for failure
// injection). Reconfiguration changes this set.
func (cl *Cluster) MemoryNodes() []string {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return append([]string(nil), cl.memNames...)
}

// KillMemoryNode fails a memory node and wipes its (volatile) memory, as a
// machine crash would.
func (cl *Cluster) KillMemoryNode(name string) {
	cl.mu.Lock()
	layout := cl.mcfg.Layout()
	cl.mu.Unlock()
	cl.fabric.Kill(name)
	if node := cl.network.Node(name); node != nil {
		memnode.Reset(node, layout)
	}
}

// RestartMemoryNode brings a failed memory node's machine back (empty). The
// coordinator's recovery manager reintegrates it in the background; use
// AwaitMemoryNodeRecovery to block on that.
func (cl *Cluster) RestartMemoryNode(name string) {
	cl.fabric.Restart(name)
}

// AwaitMemoryNodeRecovery waits until the coordinator reports at least n
// completed memory-node recoveries.
func (cl *Cluster) AwaitMemoryNodeRecovery(n uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if st := cl.coordinatorStore(); st != nil {
			if st.MemoryStats().NodeRecovered >= n {
				return nil
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	return fmt.Errorf("sift: memory node recovery %d not reached in %v", n, timeout)
}

// KillCoordinator crashes the current coordinator CPU node (process-level:
// it stops heartbeating and serving). Returns the killed node's id, or 0
// if there was no coordinator.
func (cl *Cluster) KillCoordinator() uint16 {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	for id, r := range cl.runners {
		if r.node.Role() == core.Coordinator {
			r.cancel()
			delete(cl.runners, id)
			return id
		}
	}
	return 0
}

// KillCPUNode crashes a specific CPU node.
func (cl *Cluster) KillCPUNode(id uint16) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if r, ok := cl.runners[id]; ok {
		r.cancel()
		delete(cl.runners, id)
	}
}

// StartCPUNode launches a (new or replacement) CPU node with the given id.
func (cl *Cluster) StartCPUNode(id uint16) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.closed {
		return
	}
	if _, exists := cl.runners[id]; exists {
		return
	}
	cl.startCPUNodeLocked(id)
}

// ForceFailover deterministically triggers a coordinator change: it crashes
// the current coordinator, starts a replacement CPU node under the given id
// (0 skips the replacement; an id already running is left alone), and waits
// for a successor to win the election. It returns the new coordinator's id.
func (cl *Cluster) ForceFailover(replacement uint16, timeout time.Duration) (uint16, error) {
	cl.events.Emit("cluster.force-failover", "", 0, "killing coordinator")
	old := cl.KillCoordinator()
	if replacement != 0 {
		cl.StartCPUNode(replacement)
	}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if id := cl.Coordinator(); id != 0 && id != old {
			return id, nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return 0, fmt.Errorf("sift: no successor coordinator within %v (killed %d)", timeout, old)
}

// Stats reports cluster-level counters from the current coordinator.
type Stats struct {
	CoordinatorID uint16
	KV            kv.Stats
	Memory        repmem.Stats
}

// Stats returns the current coordinator's counters (zero when none).
func (cl *Cluster) Stats() Stats {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	for id, r := range cl.runners {
		if r.node.Role() == core.Coordinator {
			if st := r.node.Store(); st != nil {
				return Stats{CoordinatorID: id, KV: st.Stats(), Memory: st.MemoryStats()}
			}
		}
	}
	return Stats{}
}

// Close tears the cluster down.
func (cl *Cluster) Close() {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return
	}
	cl.closed = true
	runners := make([]*cpuRunner, 0, len(cl.runners))
	for _, r := range cl.runners {
		runners = append(runners, r)
	}
	cl.runners = make(map[uint16]*cpuRunner)
	cl.mu.Unlock()
	for _, r := range runners {
		r.cancel()
	}
	for _, r := range runners {
		<-r.done
	}
	if cl.persistDB != nil {
		cl.persistDB.Close()
	}
}
