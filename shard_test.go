package sift

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/repro/sift/internal/kv"
	"github.com/repro/sift/internal/linearize"
	"github.com/repro/sift/internal/shard"
	"github.com/repro/sift/internal/workload"
)

// shardTestConfig is a small multi-group deployment for unit tests.
func shardTestConfig(groups int) ShardConfig {
	return ShardConfig{
		Groups: groups,
		Group:  smallConfig(),
	}
}

func newTestShardCluster(t *testing.T, cfg ShardConfig) *ShardCluster {
	t.Helper()
	sc, err := NewShardCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sc.Close)
	return sc
}

// shardKeys returns n distinct keys, plus the subset owned by each group.
func shardKeys(m shard.Map, n int) ([][]byte, map[shard.GroupID][][]byte) {
	keys := make([][]byte, n)
	byGroup := make(map[shard.GroupID][][]byte)
	for i := range keys {
		k := []byte(fmt.Sprintf("key-%04d", i))
		keys[i] = k
		g := m.GroupFor(k)
		byGroup[g] = append(byGroup[g], k)
	}
	return keys, byGroup
}

func TestShardClusterBasic(t *testing.T) {
	sc := newTestShardCluster(t, shardTestConfig(3))
	c := sc.Client()

	keys, byGroup := shardKeys(sc.Map(), 60)
	if len(byGroup) != 3 {
		t.Fatalf("60 keys landed on %d of 3 groups", len(byGroup))
	}
	for i, k := range keys {
		if err := c.Put(k, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("put %s: %v", k, err)
		}
	}
	for i, k := range keys {
		v, err := c.Get(k)
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("get %s = %q err=%v", k, v, err)
		}
	}
	// Deletes route too.
	if err := c.Delete(keys[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(keys[0]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key readable: %v", err)
	}
	// Each group served exactly its share of the puts — the router did not
	// broadcast or misroute.
	st := sc.Stats()
	for g := 0; g < 3; g++ {
		want := uint64(len(byGroup[shard.GroupID(g)]))
		if st.Groups[g].KV.Puts != want {
			t.Fatalf("group %d puts = %d, want %d", g, st.Groups[g].KV.Puts, want)
		}
	}
}

// TestShardRouterEpochStability is the router-level reconfiguration unit
// test: advancing the shard-map epoch (as per-group membership changes do)
// must not move any key between groups, so values written before the bump
// stay reachable after it.
func TestShardRouterEpochStability(t *testing.T) {
	sc := newTestShardCluster(t, shardTestConfig(3))
	c := sc.Client()

	keys, _ := shardKeys(sc.Map(), 40)
	before := make([]shard.GroupID, len(keys))
	for i, k := range keys {
		before[i] = sc.Map().GroupFor(k)
		if err := c.Put(k, []byte("stable")); err != nil {
			t.Fatal(err)
		}
	}
	for bump := 0; bump < 3; bump++ {
		nm, err := sc.AdvanceMapEpoch()
		if err != nil {
			t.Fatal(err)
		}
		if want := uint64(2 + bump); nm.Epoch() != want {
			t.Fatalf("epoch = %d, want %d", nm.Epoch(), want)
		}
	}
	for i, k := range keys {
		if g := sc.Map().GroupFor(k); g != before[i] {
			t.Fatalf("key %s moved group %d→%d across epoch bumps", k, before[i], g)
		}
		if v, err := c.Get(k); err != nil || string(v) != "stable" {
			t.Fatalf("get %s after bumps = %q err=%v", k, v, err)
		}
	}
}

// shardKeysBalanced picks perGroup keys owned by each group (batches must
// fit one log slot per group, so sub-batch sizes need bounding).
func shardKeysBalanced(m shard.Map, perGroup int) ([][]byte, map[shard.GroupID][][]byte) {
	byGroup := make(map[shard.GroupID][][]byte)
	var keys [][]byte
	for i := 0; len(keys) < perGroup*m.NumGroups(); i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		g := m.GroupFor(k)
		if len(byGroup[g]) >= perGroup {
			continue
		}
		byGroup[g] = append(byGroup[g], k)
		keys = append(keys, k)
	}
	return keys, byGroup
}

func TestShardBatchFanout(t *testing.T) {
	sc := newTestShardCluster(t, shardTestConfig(3))
	c := sc.Client()

	keys, byGroup := shardKeysBalanced(sc.Map(), 4)
	pairs := make([]Pair, len(keys))
	for i, k := range keys {
		pairs[i] = Pair{Key: k, Value: []byte(fmt.Sprintf("b%d", i))}
	}
	if err := c.PutBatch(pairs); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		v, err := c.Get(k)
		if err != nil || string(v) != fmt.Sprintf("b%d", i) {
			t.Fatalf("get %s = %q err=%v", k, v, err)
		}
	}
	st := sc.Stats()
	for g := 0; g < 3; g++ {
		want := uint64(len(byGroup[shard.GroupID(g)]))
		if st.Groups[g].KV.Puts != want {
			t.Fatalf("group %d puts = %d, want %d (sub-batch misrouted)", g, st.Groups[g].KV.Puts, want)
		}
	}
}

// TestShardBatchRetryAmplification is the cross-group retry-amplification
// regression: when one group's sub-batch fails, the groups that already
// acknowledged must not be re-sent — their put counters stay at exactly
// their sub-batch size, and the error names only the failed group with its
// pairs so the caller can retry precisely those.
func TestShardBatchRetryAmplification(t *testing.T) {
	sc := newTestShardCluster(t, shardTestConfig(3))
	c := sc.Client()
	c.RetryBudget = 400 * time.Millisecond

	keys, byGroup := shardKeysBalanced(sc.Map(), 4)
	deadGroup := sc.Map().GroupFor(keys[0])
	// Take the chosen group down hard: no CPU nodes, no coordinator.
	dead := sc.Group(deadGroup)
	for id := uint16(1); id <= 8; id++ {
		dead.KillCPUNode(id)
	}

	pairs := make([]Pair, len(keys))
	for i, k := range keys {
		pairs[i] = Pair{Key: k, Value: []byte(fmt.Sprintf("r%d", i))}
	}
	err := c.PutBatch(pairs)
	be, ok := AsBatchError(err)
	if !ok {
		t.Fatalf("want *BatchError, got %v", err)
	}
	if len(be.Failed) != 1 || be.Failed[0].Group != deadGroup {
		t.Fatalf("failed groups = %+v, want exactly group %d", be.Failed, deadGroup)
	}
	if got := len(be.Failed[0].Pairs); got != len(byGroup[deadGroup]) {
		t.Fatalf("failed pairs = %d, want %d", got, len(byGroup[deadGroup]))
	}
	if !errors.Is(err, ErrNoCoordinator) {
		t.Fatalf("aggregate error does not unwrap to ErrNoCoordinator: %v", err)
	}
	if len(be.Acked) != 2 {
		t.Fatalf("acked groups = %v, want the 2 surviving ones", be.Acked)
	}

	// The surviving groups saw their sub-batch exactly once: no blind
	// re-sends while the dead group's retries burned the budget.
	st := sc.Stats()
	for _, g := range be.Acked {
		want := uint64(len(byGroup[g]))
		if st.Groups[g].KV.Puts != want {
			t.Fatalf("group %d puts = %d, want %d (sub-batch re-sent)", g, st.Groups[g].KV.Puts, want)
		}
	}

	// Recovery: restart a CPU node in the dead group and retry only the
	// failed pairs, as BatchError directs.
	dead.StartCPUNode(40)
	if err := dead.WaitForCoordinator(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.RetryBudget = 10 * time.Second
	if err := c.PutBatch(be.Failed[0].Pairs); err != nil {
		t.Fatalf("retry of failed sub-batch: %v", err)
	}
	for i, k := range keys {
		v, err := c.Get(k)
		if err != nil || string(v) != fmt.Sprintf("r%d", i) {
			t.Fatalf("get %s = %q err=%v", k, v, err)
		}
	}
}

// TestShardBatchSharedBudget is the shared-wall-clock regression: a fan-out
// whose groups are all unreachable must give up after ONE RetryBudget, not
// one per group — doUntil clamps every sub-batch to the same absolute
// deadline.
func TestShardBatchSharedBudget(t *testing.T) {
	sc := newTestShardCluster(t, shardTestConfig(3))
	c := sc.Client()
	const budget = 300 * time.Millisecond
	c.RetryBudget = budget

	for g := 0; g < 3; g++ {
		for id := uint16(1); id <= 8; id++ {
			sc.Group(shard.GroupID(g)).KillCPUNode(id)
		}
	}
	keys, _ := shardKeysBalanced(sc.Map(), 2)
	pairs := make([]Pair, len(keys))
	for i, k := range keys {
		pairs[i] = Pair{Key: k, Value: []byte("x")}
	}
	start := time.Now()
	err := c.PutBatch(pairs)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("batch against 3 dead groups succeeded")
	}
	if !errors.Is(err, ErrNoCoordinator) {
		t.Fatalf("err = %v, want ErrNoCoordinator through the aggregate", err)
	}
	// Generous slack for scheduling; the pre-fix failure mode is ≥2×.
	if elapsed > budget+budget/2 {
		t.Fatalf("fan-out took %v with a %v budget (per-group budgets not clamped)", elapsed, budget)
	}
}

// TestShardDoUntilDeadline pins the client-level refactor: doUntil honors
// the absolute deadline it is given, regardless of the client's own
// RetryBudget.
func TestShardDoUntilDeadline(t *testing.T) {
	cfg := smallConfig()
	cl := newTestCluster(t, cfg)
	cl.KillCPUNode(1)
	cl.KillCPUNode(2)
	c := cl.Client()
	c.RetryBudget = 10 * time.Second // must be ignored by doUntil

	start := time.Now()
	err := c.doUntil(start.Add(150*time.Millisecond), func(st *kv.Store) error { return st.Put([]byte("k"), []byte("v")) })
	elapsed := time.Since(start)
	if !errors.Is(err, ErrNoCoordinator) {
		t.Fatalf("err = %v, want ErrNoCoordinator", err)
	}
	if elapsed > 450*time.Millisecond {
		t.Fatalf("doUntil ran %v past a 150ms deadline", elapsed)
	}
}

// TestShardBackupPoolClaim exercises the live backup-pool wiring: groups
// run a single CPU node each (§5.2's pool-backed mode); killing one's
// coordinator leaves the group with no CPU nodes at all, and the pool
// monitor must claim a standby and elect it. The second group to fail
// finds the pool's free node spent and waits out provisioning.
func TestShardBackupPoolClaim(t *testing.T) {
	cfg := shardTestConfig(2)
	cfg.Group.CPUNodes = 1
	cfg.BackupPoolSize = 1
	cfg.ProvisionDelay = 150 * time.Millisecond
	cfg.FailoverGrace = 20 * time.Millisecond
	sc := newTestShardCluster(t, cfg)
	c := sc.Client()
	c.RetryBudget = 20 * time.Second

	if err := c.Put([]byte("before"), []byte("pool")); err != nil {
		t.Fatal(err)
	}

	// First failure: the pooled standby takes over (no provisioning wait).
	sc.Group(0).KillCoordinator()
	if err := sc.Group(0).WaitForCoordinator(10 * time.Second); err != nil {
		t.Fatalf("group 0 never recovered via pool: %v", err)
	}
	// Second failure: the free node is spent; the claim waits for the
	// replacement VM.
	sc.Group(1).KillCoordinator()
	if err := sc.Group(1).WaitForCoordinator(10 * time.Second); err != nil {
		t.Fatalf("group 1 never recovered via pool: %v", err)
	}

	stats, starts := sc.PoolStats()
	if stats.Claims < 2 || starts < 2 {
		t.Fatalf("pool claims=%d starts=%d, want ≥2 each (stats %+v)", stats.Claims, starts, stats)
	}
	if stats.FromPool < 1 {
		t.Fatalf("no claim served from the free pool: %+v", stats)
	}
	if stats.Waited < 1 || stats.MaxWait == 0 {
		t.Fatalf("second claim should have waited for provisioning: %+v", stats)
	}

	// Both groups serve reads again.
	if v, err := c.Get([]byte("before")); err != nil || string(v) != "pool" {
		t.Fatalf("get after pooled failovers = %q err=%v", v, err)
	}
}

// runShardLinearizeClients mirrors runLinearizeClients for a sharded
// deployment: n clients run a mixed workload (singles plus periodic
// cross-group batches) through the routing client into one shared history,
// disturb fires, and the per-key histories must linearize.
func runShardLinearizeClients(t *testing.T, sc *ShardCluster, n int, disturb func()) {
	t.Helper()
	rec := linearize.NewRecorder()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := sc.Client()
			c.ClientID = id
			c.History = rec
			c.RetryBudget = 20 * time.Second
			gen := workload.NewGenerator(workload.Config{
				Mix: workload.Mixed, Keys: 12, ValueSize: 16,
				Seed: int64(2000 + id), UniqueValues: true,
				ClientID: id, DeleteRatio: 0.1,
			})
			seq := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				op := gen.Next()
				var err error
				switch {
				case seq%8 == 7 && !op.Read:
					// Periodic cross-group batch: this op's pair plus two
					// more from the generator, fanned out by the router.
					pairs := []Pair{{Key: op.Key, Value: op.Value}}
					for len(pairs) < 3 {
						extra := gen.Next()
						if extra.Read || extra.Delete {
							continue
						}
						pairs = append(pairs, Pair{Key: extra.Key, Value: extra.Value})
					}
					err = c.PutBatch(pairs)
					if _, isBatch := AsBatchError(err); isBatch {
						// Partial failure is legal under faults; the per-pair
						// histories already recorded each group's outcome.
						err = nil
					}
				case op.Read:
					_, err = c.Get(op.Key)
				case op.Delete:
					err = c.Delete(op.Key)
				default:
					err = c.Put(op.Key, op.Value)
				}
				seq++
				if err != nil && !errors.Is(err, ErrNotFound) && !errors.Is(err, ErrNoCoordinator) {
					t.Errorf("client %d: unexpected error %v", id, err)
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(i)
	}

	disturb()
	close(stop)
	wg.Wait()

	hist := rec.History()
	open := 0
	for _, o := range hist {
		if o.Ambiguous() {
			open++
		}
	}
	rep := linearize.Check(hist, linearize.DefaultTimeout)
	if rep.Result != linearize.Ok {
		var bad []linearize.Op
		for _, o := range hist {
			if o.Key == rep.Key {
				bad = append(bad, o)
			}
		}
		sort.Slice(bad, func(i, j int) bool { return bad[i].Invoke < bad[j].Invoke })
		for _, o := range bad {
			t.Logf("  c%-2d %-6s in=%q out=%q notFound=%v [%d, %d]",
				o.ClientID, o.Kind, o.In, o.Out, o.NotFound, o.Invoke, o.Return)
		}
		for _, o := range rep.Frontier {
			t.Logf("  frontier: c%-2d %-6s in=%q out=%q notFound=%v [%d, %d]",
				o.ClientID, o.Kind, o.In, o.Out, o.NotFound, o.Invoke, o.Return)
		}
		t.Fatalf("sharded history of %d ops (%d open) over %d keys: %v on key %q",
			rep.Ops, open, rep.Keys, rep.Result, rep.Key)
	}
	t.Logf("linearized %d sharded ops (%d open) over %d keys in %v", rep.Ops, open, rep.Keys, rep.Elapsed)
}

// TestChaosLinearizeShardedFailover is the multi-group acceptance test:
// 9 clients run a mixed single-key + cross-group batch workload over 3
// groups while one group is forced through a coordinator failover that
// only the shared backup pool can resolve (single CPU node per group). The
// other groups must keep serving unperturbed, retried batches must not
// double-apply anywhere, and every per-key history must linearize.
func TestChaosLinearizeShardedFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run in -short mode")
	}
	cfg := shardTestConfig(3)
	cfg.Group.CPUNodes = 1
	cfg.BackupPoolSize = 2
	cfg.ProvisionDelay = 50 * time.Millisecond
	cfg.FailoverGrace = 20 * time.Millisecond
	sc := newTestShardCluster(t, cfg)
	for g := 0; g < 3; g++ {
		dumpEventsOnFailure(t, sc.Group(shard.GroupID(g)))
	}

	runShardLinearizeClients(t, sc, 9, func() {
		time.Sleep(200 * time.Millisecond)
		// Group 1 loses its only CPU node; recovery must come from the
		// pool monitor.
		sc.Group(1).KillCoordinator()
		time.Sleep(400 * time.Millisecond)
		// And again: the second claim rides a provisioning wait.
		sc.Group(1).KillCoordinator()
		time.Sleep(500 * time.Millisecond)
	})

	stats, starts := sc.PoolStats()
	if starts < 2 {
		t.Fatalf("pool starts = %d, want ≥2 (monitor never intervened); stats %+v", starts, stats)
	}
	t.Logf("pool: %+v, %d replacement CPU nodes started", stats, starts)
}
