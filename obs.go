package sift

import (
	"fmt"
	"net/http"
	"time"

	"github.com/repro/sift/internal/core"
	"github.com/repro/sift/internal/metrics"
	"github.com/repro/sift/internal/obs"
	"github.com/repro/sift/internal/repmem"
)

// clientMetrics instruments the client layer. The histograms and counters
// live at cluster scope so they aggregate over all Client handles and
// survive coordinator failovers.
type clientMetrics struct {
	putLat    *metrics.Histogram
	getLat    *metrics.Histogram
	deleteLat *metrics.Histogram
	batchLat  *metrics.Histogram

	retries   *obs.Counter // failover retry sleeps taken inside Client.do
	ambiguous *obs.Counter // ops returned ErrAmbiguous after budget expiry
	noCoord   *obs.Counter // ops returned ErrNoCoordinator after budget expiry

	backupGets      *obs.Counter // gets served by a follower under a read lease
	backupFallbacks *obs.Counter // backup attempts that fell back to the coordinator
	leaseRejects    *obs.Counter // backup attempts rejected for lack of a valid lease
}

// initObs builds the cluster's observability surface: the metrics registry,
// the control-plane event ring, and the cross-term latency hooks handed to
// every coordinator incarnation's replicated memory.
func (cl *Cluster) initObs() {
	reg := obs.NewRegistry()
	cl.reg = reg
	cl.events = obs.NewRing(obs.DefaultRingSize)
	cl.latency = &repmem.LatencyHooks{}
	obs.RegisterProcess(reg)

	// Client layer.
	cl.cm = &clientMetrics{
		putLat:    reg.Histogram(`sift_client_op_seconds{op="put"}`, "Client operation latency, end to end across retries."),
		getLat:    reg.Histogram(`sift_client_op_seconds{op="get"}`, "Client operation latency, end to end across retries."),
		deleteLat: reg.Histogram(`sift_client_op_seconds{op="delete"}`, "Client operation latency, end to end across retries."),
		batchLat:  reg.Histogram(`sift_client_op_seconds{op="batch"}`, "Client operation latency, end to end across retries."),
		retries:   reg.Counter("sift_client_retries_total", "Failover retry sleeps taken by client operations."),
		ambiguous: reg.Counter("sift_client_ambiguous_total", "Client operations that expired their retry budget with unknown outcome."),
		noCoord:   reg.Counter("sift_client_no_coordinator_total", "Client operations that never reached any coordinator."),

		backupGets:      reg.Counter(`sift_client_backup_reads_total{outcome="served"}`, "Gets served by a follower CPU node under a read lease."),
		backupFallbacks: reg.Counter(`sift_client_backup_reads_total{outcome="fallback"}`, "Backup read attempts that fell back to the coordinator."),
		leaseRejects:    reg.Counter(`sift_client_backup_reads_total{outcome="no_lease"}`, "Backup read attempts rejected for lack of a valid lease."),
	}

	// Replicated memory hot-path latency (stable across coordinator terms).
	reg.Observe("sift_repmem_write_seconds", "Logged write commit latency (WAL append quorum).", &cl.latency.Write)
	reg.Observe("sift_repmem_direct_write_seconds", "Direct-zone write commit latency.", &cl.latency.DirectWrite)
	reg.Observe("sift_repmem_read_seconds", "Main-space read latency.", &cl.latency.Read)
	reg.Observe("sift_repmem_quorum_wait_seconds", "Quorum ack wait inside a write fan-out.", &cl.latency.Quorum)

	// Counters read through the current coordinator at scrape time. They
	// reset when the coordinatorship moves (each term rebuilds its layers);
	// Prometheus-style consumers handle counter resets natively.
	mem := func(f func(repmem.Stats) uint64) func() float64 {
		return func() float64 {
			if st := cl.coordinatorStore(); st != nil {
				return float64(f(st.MemoryStats()))
			}
			return 0
		}
	}
	reg.CounterFunc("sift_repmem_quorum_writes_total", "Writes committed on a majority (logged + direct).",
		mem(func(s repmem.Stats) uint64 { return s.Writes + s.DirectWrites }))
	reg.CounterFunc("sift_repmem_reads_total", "Main-space reads served.",
		mem(func(s repmem.Stats) uint64 { return s.Reads }))
	reg.CounterFunc("sift_repmem_applies_total", "WAL entries applied to materialized memory.",
		mem(func(s repmem.Stats) uint64 { return s.Applies }))
	reg.CounterFunc("sift_repmem_node_failures_total", "Memory node failure detections.",
		mem(func(s repmem.Stats) uint64 { return s.NodeFailures }))
	reg.CounterFunc("sift_repmem_node_recoveries_total", "Memory node recoveries completed.",
		mem(func(s repmem.Stats) uint64 { return s.NodeRecovered }))
	reg.CounterFunc("sift_repmem_node_suspected_total", "Live-to-suspect transitions (gray-failure detections).",
		mem(func(s repmem.Stats) uint64 { return s.NodeSuspected }))
	reg.CounterFunc("sift_repmem_node_degraded_total", "Live-to-degraded transitions (sustained-slowness detections).",
		mem(func(s repmem.Stats) uint64 { return s.NodeDegraded }))
	reg.CounterFunc("sift_repmem_straggler_suspects_total", "Suspicions raised by the EWMA straggler check.",
		mem(func(s repmem.Stats) uint64 { return s.StragglerSuspects }))
	reg.CounterFunc("sift_repmem_read_repairs_total", "Reads that triggered an inline block repair.",
		mem(func(s repmem.Stats) uint64 { return s.ReadRepairs }))
	reg.CounterFunc("sift_repmem_corruptions_total", "Replica blocks that failed their checksum or diverged.",
		mem(func(s repmem.Stats) uint64 { return s.CorruptionsDetected }))
	reg.CounterFunc("sift_repmem_blocks_repaired_total", "Replica blocks rewritten from a verified copy.",
		mem(func(s repmem.Stats) uint64 { return s.BlocksRepaired }))
	reg.CounterFunc("sift_scrub_passes_total", "Completed full scrub sweeps.",
		mem(func(s repmem.Stats) uint64 { return s.ScrubPasses }))
	reg.CounterFunc("sift_scrub_blocks_total", "Blocks and ranges examined by the scrubber.",
		mem(func(s repmem.Stats) uint64 { return s.ScrubbedBlocks }))
	reg.CounterFunc("sift_membership_publish_errors_total", "Failed per-node membership-record publications.",
		mem(func(s repmem.Stats) uint64 { return s.MembershipPublishErrors }))

	for _, op := range []struct {
		name string
		f    func(Stats) uint64
	}{
		{"put", func(s Stats) uint64 { return s.KV.Puts }},
		{"get", func(s Stats) uint64 { return s.KV.Gets }},
		{"delete", func(s Stats) uint64 { return s.KV.Deletes }},
	} {
		f := op.f
		reg.CounterFunc(fmt.Sprintf("sift_kv_ops_total{op=%q}", op.name), "Key-value operations served by the coordinator.",
			func() float64 { return float64(f(cl.Stats())) })
	}
	reg.CounterFunc(`sift_kv_cache_total{kind="hit"}`, "Coordinator cache lookups.",
		func() float64 { return float64(cl.Stats().KV.CacheHits) })
	reg.CounterFunc(`sift_kv_cache_total{kind="miss"}`, "Coordinator cache lookups.",
		func() float64 { return float64(cl.Stats().KV.CacheMisses) })

	// Election lifecycle, summed over the currently running CPU nodes.
	cpu := func(f func(*core.CPUNode) uint64) func() float64 {
		return func() float64 {
			cl.mu.Lock()
			defer cl.mu.Unlock()
			var total uint64
			for _, r := range cl.runners {
				total += f(r.node)
			}
			return float64(total)
		}
	}
	reg.CounterFunc("sift_election_campaigns_total", "Election campaigns started by running CPU nodes.",
		cpu(func(n *core.CPUNode) uint64 { return n.Elections() }))
	reg.CounterFunc("sift_election_promotions_total", "Coordinator promotions on running CPU nodes.",
		cpu(func(n *core.CPUNode) uint64 { return n.Promotions() }))
	reg.CounterFunc("sift_election_dethronements_total", "Coordinators dethroned by a heartbeat failure.",
		cpu(func(n *core.CPUNode) uint64 { return n.Dethronements() }))
	reg.GaugeFunc("sift_election_term", "Current coordinator's term (0 when none).",
		func() float64 {
			cl.mu.Lock()
			defer cl.mu.Unlock()
			for _, r := range cl.runners {
				if r.node.Role() == core.Coordinator {
					return float64(r.node.Term())
				}
			}
			return 0
		})
	reg.GaugeFunc("sift_coordinator_id", "Serving coordinator's CPU node id (0 when none).",
		func() float64 { return float64(cl.Coordinator()) })
	reg.GaugeFunc("sift_config_epoch", "Committed config epoch the coordinator serves at (0 when none).",
		func() float64 { return float64(cl.ConfigEpoch()) })
	reg.CounterFunc("sift_reconfig_rebuilds_total", "In-term serving-layer rebuilds after committed reconfigurations.",
		cpu(func(n *core.CPUNode) uint64 { return n.Reconfigs() }))
	reg.GaugeFunc("sift_pipeline_queue_depth", "Current depth of the per-node write worker queues.",
		func() float64 {
			if st := cl.coordinatorStore(); st != nil {
				cur, _ := st.Memory().QueueDepth()
				return float64(cur)
			}
			return 0
		})

	// WAN transport, when part of the deployment crosses a simulated
	// wide-area link (Config.WAN).
	if cl.wan != nil {
		reg.CounterFunc("sift_wan_fec_recovered_total", "WAN flights decoded from parity shards (losses masked without a retransmit round).",
			func() float64 { return float64(cl.WANStats().FECRecovered) })
		reg.CounterFunc("sift_wan_retransmits_total", "WAN flight retransmission rounds after parity could not cover the losses.",
			func() float64 { return float64(cl.WANStats().Retransmits) })
		reg.GaugeFunc("sift_wan_redundancy_ratio", "Current FEC redundancy (k+r)/k chosen by the loss-adaptive controller.",
			func() float64 { return cl.wan.tr.Redundancy() })
		reg.GaugeFunc("sift_wan_loss_estimate", "EWMA of the WAN shard loss rate driving the redundancy controller.",
			func() float64 { return cl.wan.tr.LossEstimate() })
	}

	// Per-node liveness, from the coordinator's gray-failure view.
	cl.nodeGauges = make(map[string]bool)
	for _, name := range cl.memNames {
		cl.registerNodeGauge(name)
	}
}

// registerNodeGauge adds the per-node liveness gauge for a memory node.
// Reconfiguration calls it for nodes joining after startup; re-registering
// a name is a no-op.
func (cl *Cluster) registerNodeGauge(name string) {
	cl.gaugeMu.Lock()
	defer cl.gaugeMu.Unlock()
	if cl.nodeGauges == nil || cl.nodeGauges[name] {
		return
	}
	cl.nodeGauges[name] = true
	node := name
	cl.reg.GaugeFunc(fmt.Sprintf("sift_node_up{node=%q}", node),
		"1 when the coordinator sees the memory node live, 0 otherwise.",
		func() float64 {
			for _, h := range cl.Health() {
				if h.Node == node && h.State == "live" {
					return 1
				}
			}
			return 0
		})
	cl.reg.GaugeFunc(fmt.Sprintf("sift_node_degraded{node=%q}", node),
		"1 when the coordinator holds the memory node degraded (responsive but served around).",
		func() float64 {
			for _, h := range cl.Health() {
				if h.Node == node && h.State == "degraded" {
					return 1
				}
			}
			return 0
		})
}

// Metrics returns the cluster's metrics registry.
func (cl *Cluster) Metrics() *obs.Registry { return cl.reg }

// Events returns the cluster's control-plane event ring.
func (cl *Cluster) Events() *obs.Ring { return cl.events }

// Healthz is the cluster's health predicate: a coordinator must be serving
// and a majority of memory nodes must be live in its view.
func (cl *Cluster) Healthz() error {
	st := cl.coordinatorStore()
	if st == nil {
		return ErrNoCoordinator
	}
	live := 0
	for _, h := range st.MemoryHealth() {
		if h.State == "live" {
			live++
		}
	}
	if total := len(cl.MemoryNodes()); live < total/2+1 {
		return fmt.Errorf("sift: only %d of %d memory nodes live (need %d)", live, total, total/2+1)
	}
	return nil
}

// Statusz builds the /statusz document: coordinator identity, per-CPU-node
// roles, replicated memory stats and health, and pipeline depth.
func (cl *Cluster) Statusz() any {
	doc := map[string]any{
		"time":         time.Now().UTC().Format(time.RFC3339Nano),
		"memory_nodes": cl.MemoryNodes(),
		"config_epoch": cl.ConfigEpoch(),
		"events_seen":  cl.events.Seq(),
	}
	cl.mu.Lock()
	cpus := make(map[string]any, len(cl.runners))
	for id, r := range cl.runners {
		cpus[fmt.Sprintf("cpu%d", id)] = map[string]any{
			"role":       r.node.Role().String(),
			"term":       r.node.Term(),
			"elections":  r.node.Elections(),
			"promotions": r.node.Promotions(),
		}
		if r.node.Role() == core.Coordinator {
			doc["term"] = r.node.Term()
		}
	}
	cl.mu.Unlock()
	doc["cpu_nodes"] = cpus
	doc["coordinator"] = cl.Coordinator()
	if st := cl.coordinatorStore(); st != nil {
		doc["kv"] = st.Stats()
		doc["repmem"] = st.MemoryStats()
		doc["health"] = st.MemoryHealth()
		cur, max := st.Memory().QueueDepth()
		doc["pipeline"] = map[string]int64{"queue_depth": cur, "queue_depth_max": max}
	}
	return doc
}

// DebugHandler returns the cluster's debug HTTP handler (/metrics, /healthz,
// /statusz, /events, /debug/pprof/*) for mounting in tests or embedding
// applications; daemons use obs.Start with the same Options.
func (cl *Cluster) DebugHandler() http.Handler {
	return obs.NewHandler(obs.Options{
		Registry: cl.reg,
		Events:   cl.events,
		Healthz:  cl.Healthz,
		Statusz:  cl.Statusz,
	})
}
