// Package sift is a resource-efficient consensus library with a replicated
// key-value store, reproducing "Sift: Resource-Efficient Consensus with
// RDMA" (Kazhamiaka et al., CoNEXT 2019).
//
// Sift disaggregates a consensus group into CPU nodes (stateless; one is
// elected coordinator) and passive memory nodes reached via simulated
// one-sided RDMA (READ/WRITE/CAS over reliable connections). The
// coordinator logs client writes to a circular write-ahead log replicated
// on 2F+1 memory nodes, applies them to materialized replicated memory in
// the background, and serves reads from a local cache or a single remote
// read. F+1 CPU nodes tolerate F CPU failures because election happens
// entirely through compare-and-swap operations on the memory nodes'
// administrative words — CPU nodes never talk to each other.
//
// Optional erasure coding (Cauchy Reed–Solomon) stores one chunk per
// memory node instead of a full copy, cutting per-node memory by a factor
// of F+1 while keeping 2F+1-node fault tolerance; the write-ahead log
// remains unencoded so no committed write is ever lost to a
// coordinator+quorum-member double failure.
//
// The entry point is NewCluster, which builds an in-process deployment:
//
//	cluster, err := sift.NewCluster(sift.Config{F: 1})
//	if err != nil { ... }
//	defer cluster.Close()
//	client := cluster.Client()
//	client.Put([]byte("key"), []byte("value"))
//	v, err := client.Get([]byte("key"))
//
// Multi-process deployments use cmd/memnoded (passive memory node daemon)
// and cmd/siftd (CPU node daemon) over TCP; see the examples directory.
package sift

import (
	"errors"
	"fmt"
	"time"

	"github.com/repro/sift/internal/kv"
)

// Client-visible errors.
var (
	// ErrNotFound is returned by Get for missing keys.
	ErrNotFound = errors.New("sift: key not found")
	// ErrNoCoordinator means no coordinator was available within the
	// operation's retry budget (e.g. during a failover, or with every CPU
	// node down).
	ErrNoCoordinator = errors.New("sift: no coordinator available")
	// ErrClosed is returned after Cluster.Close.
	ErrClosed = errors.New("sift: cluster closed")
	// ErrAmbiguous means the operation exhausted its retry budget after at
	// least one attempt reached a coordinator, so it may or may not have
	// committed (e.g. the ack was lost to a failover mid-write). It wraps
	// ErrNoCoordinator: errors.Is(err, ErrNoCoordinator) still holds, and
	// callers that track consistency must treat the op as open-ended rather
	// than as a definite failure.
	ErrAmbiguous = fmt.Errorf("sift: operation outcome unknown (may have committed): %w", ErrNoCoordinator)
)

// LatencyProfile selects the simulated fabric's latency model.
type LatencyProfile int

// Latency profiles.
const (
	// NoLatency runs verbs at memory speed (tests, functional use).
	NoLatency LatencyProfile = iota
	// RDMALatency models a 10GbE RNIC (~2µs one-way + ~1ns/byte).
	RDMALatency
	// TCPLatency models kernel TCP on the same fabric (~25µs one-way).
	TCPLatency
)

// Config describes an in-process Sift deployment. The zero value is
// usable: F=1, no erasure coding, a modest key-value store, and no
// simulated latency.
type Config struct {
	// F is the fault tolerance level: the deployment has 2F+1 memory nodes
	// (tolerating F memory failures) and CPUNodes CPU nodes. Default 1.
	F int
	// CPUNodes is the number of CPU nodes (default F+1; 1 is valid when an
	// external backup pool supplies failover capacity, §5.2).
	CPUNodes int
	// ErasureCoding stores the materialized memory as Cauchy Reed–Solomon
	// chunks (k=F+1 data + F parity, one chunk per memory node).
	ErasureCoding bool

	// Keys is the key-value store capacity (default 16384; the paper's
	// evaluation uses 1M).
	Keys int
	// MaxKeySize and MaxValueSize bound keys and values (defaults 32 and
	// 992, the paper's §6.2 limits).
	MaxKeySize   int
	MaxValueSize int
	// CacheFraction sizes the coordinator's value cache relative to Keys
	// (default 0.5).
	CacheFraction float64
	// IndexLoadFactor is the hash table load factor (default 0.125).
	IndexLoadFactor float64
	// KVWALSlots is the key-value circular log size (default 4096 entries;
	// the paper uses 64k).
	KVWALSlots int
	// MemWALSlots and MemWALSlotSize define the replicated-memory log
	// (defaults 1024 × 4096 B; the paper uses 32k slots).
	MemWALSlots    int
	MemWALSlotSize int

	// HeartbeatInterval, ReadInterval, and MissedBeats configure failure
	// detection (defaults 7ms / 7ms / 3, the §6.5 values).
	HeartbeatInterval time.Duration
	ReadInterval      time.Duration
	MissedBeats       int

	// BackupReads lets follower CPU nodes serve Get requests directly from
	// replicated memory under a read lease piggybacked on their heartbeat
	// reads, spreading read load beyond the coordinator. Writes then wait
	// for their background apply (and briefly longer after a memory-node
	// exclusion) before acknowledging, so the reads stay linearizable; see
	// DESIGN.md §13. Off by default.
	BackupReads bool
	// LeaseWindow is the backup read-lease duration (default
	// 4×HeartbeatInterval). Shorter windows bound coordinator-failover
	// read unavailability tighter; longer windows tolerate heartbeat-read
	// scheduling jitter better.
	LeaseWindow time.Duration
	// NodeRecoveryInterval is the dead-memory-node reintegration poll
	// period (default 250ms).
	NodeRecoveryInterval time.Duration
	// ScrubInterval is the background integrity scrubber's tick; each tick
	// verifies a small batch of main-memory blocks and direct-zone ranges
	// against their checksums and cross-replica agreement, repairing what it
	// can. Default 50ms; negative disables the scrubber.
	ScrubInterval time.Duration
	// NoIntegrity disables the per-block CRC32C checksum strip and the
	// read-path verification/read-repair that rides on it.
	NoIntegrity bool

	// OpDeadline bounds every one-sided verb (READ/WRITE/CAS): an
	// operation outstanding longer than this fails with rdma.ErrDeadline
	// instead of blocking its submitter, which is what lets the cluster
	// detect hung-but-connected (gray) memory nodes. Default 1s; negative
	// disables per-operation deadlines entirely.
	OpDeadline time.Duration
	// SuspectAfter and DeadAfter are the consecutive deadline-expiry
	// counts after which a memory node is suspected gray (excluded from
	// quorum waits, written best-effort) and declared dead (defaults 2
	// and 16).
	SuspectAfter int
	DeadAfter    int
	// StragglerFactor and StragglerMinLatency tune the EWMA straggler
	// detector: a live memory node whose commit-latency EWMA exceeds both
	// StragglerFactor × the fastest node's EWMA and the StragglerMinLatency
	// floor is moved to the degraded state — health-reported, written
	// best-effort, excluded from quorum waits, but not oscillated through
	// the suspect→repair cycle (defaults 16 and 2ms).
	StragglerFactor     float64
	StragglerMinLatency time.Duration
	// StragglerMinSamples is the minimum number of latency observations the
	// straggler check needs before judging a node (default 8).
	StragglerMinSamples int
	// SuspectProbeLimit is how many consecutive failed probes a suspect or
	// degraded memory node gets before being declared dead (default 4).
	SuspectProbeLimit int
	// DegradeExitProbes is how many consecutive sub-floor probes a degraded
	// node must answer before it is rebuilt and readmitted (default 3).
	DegradeExitProbes int

	// WAN, when non-nil, places part of the deployment across a simulated
	// wide-area link — sustained latency, bursty loss, reordering — with a
	// loss-adaptive FEC transport on the impaired paths; see WANConfig.
	WAN *WANConfig

	// FaultInjection interposes a fault-injection layer between CPU nodes
	// and the fabric; Faults() then controls per-memory-node drop, delay,
	// hang, and dial failures. For chaos tests only — off by default.
	FaultInjection bool

	// Latency selects the simulated fabric profile.
	Latency LatencyProfile

	// PersistDir, when non-empty, additionally writes every committed
	// update to a durable store (internal/persist's minidb) at this path —
	// the paper's §3.5 persistence option, where a background thread
	// synchronously persists committed writes. The directory is created if
	// missing and survives cluster restarts.
	PersistDir string

	// Seed makes elections and backoffs deterministic.
	Seed int64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.F <= 0 {
		out.F = 1
	}
	if out.CPUNodes <= 0 {
		out.CPUNodes = out.F + 1
	}
	if out.Keys <= 0 {
		out.Keys = 16384
	}
	if out.MaxKeySize <= 0 {
		out.MaxKeySize = 32
	}
	if out.MaxValueSize <= 0 {
		out.MaxValueSize = 992
	}
	if out.CacheFraction <= 0 {
		out.CacheFraction = 0.5
	}
	if out.IndexLoadFactor <= 0 {
		out.IndexLoadFactor = 0.125
	}
	if out.KVWALSlots <= 0 {
		out.KVWALSlots = 4096
	}
	if out.MemWALSlots <= 0 {
		out.MemWALSlots = 1024
	}
	if out.MemWALSlotSize <= 0 {
		out.MemWALSlotSize = 4096
	}
	if out.HeartbeatInterval <= 0 {
		out.HeartbeatInterval = 7 * time.Millisecond
	}
	if out.ReadInterval <= 0 {
		out.ReadInterval = 7 * time.Millisecond
	}
	if out.MissedBeats <= 0 {
		out.MissedBeats = 3
	}
	if out.BackupReads && out.LeaseWindow <= 0 {
		out.LeaseWindow = 4 * out.HeartbeatInterval
	}
	if out.NodeRecoveryInterval <= 0 {
		out.NodeRecoveryInterval = 250 * time.Millisecond
	}
	if out.ScrubInterval == 0 {
		out.ScrubInterval = 50 * time.Millisecond
	}
	if out.OpDeadline == 0 {
		out.OpDeadline = time.Second
	}
	if out.OpDeadline < 0 {
		out.OpDeadline = 0
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	return out
}

// Validate checks the configuration.
func (c Config) Validate() error {
	cc := c.withDefaults()
	if cc.F > 5 {
		return fmt.Errorf("sift: F=%d is unreasonably large for an in-process cluster", cc.F)
	}
	kcfg := cc.kvConfig()
	return kcfg.Validate()
}

// kvConfig derives the key-value store configuration.
func (c Config) kvConfig() kv.Config {
	return kv.Config{
		Capacity:      c.Keys,
		MaxKey:        c.MaxKeySize,
		MaxValue:      c.MaxValueSize,
		LoadFactor:    c.IndexLoadFactor,
		CacheFraction: c.CacheFraction,
		WALSlots:      c.KVWALSlots,
		ApplyShards:   4,
	}
}
