package sift

import (
	"fmt"
	"time"

	"github.com/repro/sift/internal/netsim"
	"github.com/repro/sift/internal/wantransport"
)

// wanOpHeader approximates the per-request wire framing on the simulated
// client↔coordinator WAN hop.
const wanOpHeader = 32

// WANConfig places part of an in-process deployment across a simulated
// wide-area link: sustained latency, jitter, bursty (Gilbert–Elliott) loss,
// reordering, and bandwidth caps, with a loss-adaptive FEC transport
// (internal/wantransport) masking packet loss on the impaired paths. The
// zero value is invalid — at least one of Replica or ClientWAN must select
// a WAN path.
type WANConfig struct {
	// Profile names a netsim impairment preset for the WAN links:
	// "cross-region", "congested", or "lossy-wifi" (see netsim.PresetNames).
	// Empty builds a profile from the scalar fields below instead.
	Profile string
	// RTT is the WAN round-trip propagation time (default 40ms).
	RTT time.Duration
	// Jitter adds a uniform extra one-way delay in [0, Jitter) per packet.
	Jitter time.Duration
	// LossRate is the stationary per-packet loss probability, modeled as a
	// Gilbert–Elliott bursty process whose mean loss burst is LossBurst
	// consecutive packets (default burst 4 when LossRate > 0).
	LossRate  float64
	LossBurst float64
	// ReorderP is the probability a delivered packet is held back past its
	// successors.
	ReorderP float64
	// Bandwidth caps the WAN links in bytes/second (0 = uncapped).
	Bandwidth int64

	// Replica names one memory node that lives across the WAN: every CPU
	// node's links to it carry the impairment (and, unless DisableFEC, the
	// FEC transport). Empty keeps all memory nodes on the local fabric.
	Replica string
	// ClientWAN routes the client↔coordinator path across the WAN, with
	// requests coalesced into shared FEC flights by a congestion-aware
	// batcher.
	ClientWAN bool

	// DisableFEC removes the forward-error-correction layer from the WAN
	// paths, leaving plain per-packet retransmission (the ARQ baseline the
	// degradation experiments compare against).
	DisableFEC bool
	// FECData and FECMaxParity override the FEC flight geometry: k data
	// shards (default 4) and the adaptive parity ceiling (default k).
	FECData      int
	FECMaxParity int
}

// impairment resolves the configured WAN link profile into a template
// Impairment; per-link instances are forked from it with distinct seeds.
func (w *WANConfig) impairment(seed int64) (*netsim.Impairment, error) {
	if w.Profile != "" {
		return netsim.Preset(w.Profile, seed)
	}
	rtt := w.RTT
	if rtt <= 0 {
		rtt = 40 * time.Millisecond
	}
	im := &netsim.Impairment{
		OneWay:    rtt / 2,
		Jitter:    w.Jitter,
		ReorderP:  w.ReorderP,
		Bandwidth: w.Bandwidth,
	}
	if w.LossRate > 0 {
		burst := w.LossBurst
		if burst <= 0 {
			burst = 4
		}
		im.Loss = netsim.NewGilbertElliottRate(w.LossRate, burst, seed)
	}
	im.Seed(seed)
	return im, nil
}

// wanState is a cluster's live WAN wiring: the shared adaptive-FEC
// transport, the resolved impairment template, and the client-side path.
type wanState struct {
	cfg  WANConfig
	tr   *wantransport.Transport
	base *netsim.Impairment

	clientImp *netsim.Impairment    // client hop (not a fabric node)
	client    *wantransport.Batcher // nil unless cfg.ClientWAN
}

// initWAN resolves Config.WAN and installs the impairments and transport.
// Called after the memory nodes exist and before any CPU node dials.
func (cl *Cluster) initWAN() error {
	w := *cl.cfg.WAN
	if w.Replica == "" && !w.ClientWAN {
		return fmt.Errorf("sift: WAN config selects no WAN path (set Replica and/or ClientWAN)")
	}
	seed := cl.cfg.Seed ^ 0x57414e // decorrelate from election/backoff seeds
	base, err := w.impairment(seed)
	if err != nil {
		return err
	}
	ws := &wanState{cfg: w, base: base}
	ws.tr = wantransport.New(wantransport.Config{
		Data:       w.FECData,
		MaxParity:  w.FECMaxParity,
		RTT:        base.RTT(),
		DisableFEC: w.DisableFEC,
	})
	if w.Replica != "" {
		found := false
		for _, n := range cl.memNames {
			if n == w.Replica {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("sift: WAN replica %q is not a memory node", w.Replica)
		}
		imp := base.Fork(seed + 1)
		// With FEC the wan transport wrapper owns loss and latency via
		// SendDatagram; DatagramOnly keeps the fabric's reliable Transfer
		// path from charging the same impairment twice. The ARQ baseline
		// instead lets Transfer model loss as retransmission stalls.
		imp.DatagramOnly = !w.DisableFEC
		cl.fabric.SetNodeImpairment(w.Replica, imp)
	}
	if w.ClientWAN {
		ws.clientImp = base.Fork(seed + 2)
		ws.client = ws.tr.Batcher(wantransport.ImpairedLink{Imp: ws.clientImp}, 0, 0)
	}
	cl.wan = ws
	return nil
}

// clientLeg charges one client→coordinator (or return) datagram leg through
// the coalescing batcher. A nil state or LAN client path is free.
func (w *wanState) clientLeg(size int) error {
	if w == nil || w.client == nil {
		return nil
	}
	return w.client.Do(size)
}

// wrapWANDial interposes the FEC transport on dials to the WAN replica.
// src is the dialing CPU node's fabric name.
func (cl *Cluster) wrapWANDial(src string, dial wantransport.Dialer) wantransport.Dialer {
	if cl.wan == nil || cl.wan.cfg.Replica == "" || cl.wan.cfg.DisableFEC {
		return dial
	}
	replica := cl.wan.cfg.Replica
	link := wantransport.FabricLink{Fabric: cl.fabric, Src: src, Dst: replica}
	return cl.wan.tr.WrapDialer(dial, replica, link)
}

// wanBackupGet is backupGet with the WAN client legs charged around it. A
// failed response leg degrades to a coordinator fallback, which is safe for
// reads.
func (cl *Cluster) wanBackupGet(key []byte) ([]byte, bool) {
	if cl.wan == nil || cl.wan.client == nil {
		return cl.backupGet(key)
	}
	if cl.wan.clientLeg(wanOpHeader+len(key)) != nil {
		return nil, false
	}
	v, ok := cl.backupGet(key)
	if !ok {
		return nil, false
	}
	if cl.wan.clientLeg(wanOpHeader+len(v)) != nil {
		return nil, false
	}
	return v, true
}

// WANStats snapshots the WAN transport's counters (zero without Config.WAN).
func (cl *Cluster) WANStats() wantransport.Stats {
	if cl.wan == nil {
		return wantransport.Stats{}
	}
	return cl.wan.tr.Snapshot()
}

// DegradedMemoryNodes lists memory nodes the coordinator currently holds in
// the degraded state — responsive but too slow for the quorum fast path,
// served around rather than suspected (nil when no coordinator serves).
func (cl *Cluster) DegradedMemoryNodes() []string {
	if st := cl.coordinatorStore(); st != nil {
		return st.Memory().DegradedMemoryNodes()
	}
	return nil
}
