package sift

import (
	"fmt"
	"time"

	"github.com/repro/sift/internal/core"
	"github.com/repro/sift/internal/memnode"
)

// Online reconfiguration: add, remove, and replace memory nodes while the
// cluster serves traffic. The coordinator drives state transfer and the
// epoch commit (see internal/repmem); the cluster layer creates the backing
// machines, routes the request to the serving coordinator, and fans the
// committed configuration out to the follower CPU nodes so their electors
// and backup readers follow the member set.

// coordinatorNode returns the serving coordinator CPU node, waiting up to
// timeout for one (reconfigurations race coordinator failovers).
func (cl *Cluster) coordinatorNode(timeout time.Duration) (*core.CPUNode, error) {
	deadline := time.Now().Add(timeout)
	for {
		cl.mu.Lock()
		for _, r := range cl.runners {
			if r.node.Role() == core.Coordinator && r.node.Store() != nil {
				n := r.node
				cl.mu.Unlock()
				return n, nil
			}
		}
		cl.mu.Unlock()
		if time.Now().After(deadline) {
			return nil, ErrNoCoordinator
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// ensureMemMachine makes sure a memory-node machine named name exists on the
// fabric with the given layout. A machine that already exists but is not in
// the current member set is wiped to the target layout — joining is always
// from empty; the state-transfer pipeline fills it.
func (cl *Cluster) ensureMemMachine(name string, layout memnode.Layout, current map[string]bool) error {
	if node := cl.network.Node(name); node != nil {
		if current[name] {
			return nil // retained member: leave its contents alone
		}
		memnode.Reset(node, layout)
		cl.fabric.Restart(name)
		return nil
	}
	node, err := memnode.New(name, layout)
	if err != nil {
		return err
	}
	cl.network.AddNode(node)
	cl.registerNodeGauge(name)
	return nil
}

// adoptClusterConfig records a committed configuration at cluster scope
// (member names, repmem config for later CPU-node starts and machine
// resets) and pushes it to every running CPU node.
func (cl *Cluster) adoptClusterConfig(rec memnode.ConfigRecord) {
	cl.mu.Lock()
	cl.memNames = append([]string(nil), rec.Members...)
	cl.mcfg.MemoryNodes = cl.memNames
	cl.mcfg.Epoch = rec.Epoch
	cl.mcfg.ECData, cl.mcfg.ECParity = rec.ECData, rec.ECParity
	if rec.ECBlockSize > 0 {
		cl.mcfg.ECBlockSize = rec.ECBlockSize
	}
	runners := make([]*cpuRunner, 0, len(cl.runners))
	for _, r := range cl.runners {
		runners = append(runners, r)
	}
	cl.mu.Unlock()
	for _, r := range runners {
		r.node.AdoptConfig(rec)
	}
	cl.events.Emit("cluster.reconfigured", "", 0,
		fmt.Sprintf("config epoch %d: %d members", rec.Epoch, len(rec.Members)))
}

// ConfigEpoch returns the serving coordinator's committed config epoch (0
// when no coordinator serves).
func (cl *Cluster) ConfigEpoch() uint32 {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	for _, r := range cl.runners {
		if r.node.Role() == core.Coordinator && r.node.Store() != nil {
			return r.node.ConfigEpoch()
		}
	}
	return 0
}

// currentMemberSet returns the member names as a set (under cl.mu).
func (cl *Cluster) currentMemberSet() map[string]bool {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	set := make(map[string]bool, len(cl.memNames))
	for _, n := range cl.memNames {
		set[n] = true
	}
	return set
}

// freshMemName picks an unused memory-node name ("memN" with the smallest
// free N at or above the current count).
func (cl *Cluster) freshMemName() string {
	used := cl.currentMemberSet()
	for i := 0; ; i++ {
		name := fmt.Sprintf("mem%d", i)
		if !used[name] && cl.network.Node(name) == nil {
			return name
		}
	}
}

// ReplaceMemoryNode live-replaces memory node oldName with a fresh machine
// named newName ("" picks a name), preserving the group's geometry. The old
// node may be live (its contents are mirrored onto the replacement under
// traffic, then cut over under a short write barrier) or dead (the
// replacement is rebuilt from the surviving copies). The replaced node's
// machine is left on the fabric, fenced out by the new config epoch and its
// retired tombstone. Returns the replacement's name.
func (cl *Cluster) ReplaceMemoryNode(oldName, newName string) (string, error) {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return "", ErrClosed
	}
	layout := cl.mcfg.Layout()
	cl.mu.Unlock()
	if newName == "" {
		newName = cl.freshMemName()
	}
	current := cl.currentMemberSet()
	if !current[oldName] {
		return "", fmt.Errorf("sift: %q is not a memory node", oldName)
	}
	if current[newName] {
		return "", fmt.Errorf("sift: %q is already a memory node", newName)
	}
	if err := cl.ensureMemMachine(newName, layout, current); err != nil {
		return "", err
	}
	n, err := cl.coordinatorNode(5 * time.Second)
	if err != nil {
		return "", err
	}
	if err := n.ReplaceMemoryNode(oldName, newName); err != nil {
		return "", err
	}
	cl.adoptClusterConfig(n.ConfigSnapshot())
	return newName, nil
}

// AddMemoryNode grows a fully replicated group by one fresh node named name
// ("" picks a name). Erasure-coded groups cannot grow one node at a time
// (the chunk layout is positional); use RestripeMemoryNodes. Returns the new
// node's name.
func (cl *Cluster) AddMemoryNode(name string) (string, error) {
	cl.mu.Lock()
	if cl.cfg.ErasureCoding {
		cl.mu.Unlock()
		return "", fmt.Errorf("sift: cannot add a single node to an erasure-coded group; use RestripeMemoryNodes")
	}
	members := append([]string(nil), cl.memNames...)
	cl.mu.Unlock()
	if name == "" {
		name = cl.freshMemName()
	}
	for _, m := range members {
		if m == name {
			return "", fmt.Errorf("sift: %q is already a memory node", name)
		}
	}
	if err := cl.RestripeMemoryNodes(append(members, name), 0, 0); err != nil {
		return "", err
	}
	return name, nil
}

// RemoveMemoryNode shrinks a fully replicated group by one node. The removed
// node's machine is left on the fabric (fenced by epoch + tombstone).
func (cl *Cluster) RemoveMemoryNode(name string) error {
	cl.mu.Lock()
	if cl.cfg.ErasureCoding {
		cl.mu.Unlock()
		return fmt.Errorf("sift: cannot remove a single node from an erasure-coded group; use RestripeMemoryNodes")
	}
	members := make([]string, 0, len(cl.memNames))
	found := false
	for _, m := range cl.memNames {
		if m == name {
			found = true
			continue
		}
		members = append(members, m)
	}
	cl.mu.Unlock()
	if !found {
		return fmt.Errorf("sift: %q is not a memory node", name)
	}
	if len(members) == 0 {
		return fmt.Errorf("sift: cannot remove the last memory node")
	}
	return cl.RestripeMemoryNodes(members, 0, 0)
}

// RestripeMemoryNodes moves the group onto a new member set and/or erasure
// geometry. Full replication stays full replication and EC stays EC with
// the same block size — the KV layer's block alignment is derived from it
// and cannot change under a live store. An EC restripe requires an entirely
// fresh target set (chunk placement is positional); a plain restripe copies
// only onto the joining nodes. Machines for fresh member names are created
// (or wiped) automatically with the target layout.
func (cl *Cluster) RestripeMemoryNodes(members []string, ecData, ecParity int) error {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return ErrClosed
	}
	tcfg := cl.mcfg
	cl.mu.Unlock()
	tcfg.MemoryNodes = members
	tcfg.ECData, tcfg.ECParity = ecData, ecParity
	layout := tcfg.Layout()

	current := cl.currentMemberSet()
	for _, name := range members {
		if err := cl.ensureMemMachine(name, layout, current); err != nil {
			return err
		}
	}
	n, err := cl.coordinatorNode(5 * time.Second)
	if err != nil {
		return err
	}
	if err := n.RestripeMemoryNodes(members, ecData, ecParity); err != nil {
		return err
	}
	cl.adoptClusterConfig(n.ConfigSnapshot())
	return nil
}
