// Command siftd runs a Sift CPU node: it participates in coordinator
// election against a set of memnoded memory nodes and, while coordinator,
// serves the key-value API over the client RPC protocol. Multiple siftd
// processes with the same -mem list form the group's F+1 CPU nodes.
//
// Usage:
//
//	siftd -id 1 -listen :8000 -mem host1:7000,host2:7000,host3:7000
//
// Clients (cmd/sift-cli, or anything speaking internal/rpc's KV protocol)
// may connect to any siftd; non-coordinators reject operations with an
// error naming their role, and clients retry elsewhere.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/repro/sift/internal/core"
	"github.com/repro/sift/internal/deploy"
	"github.com/repro/sift/internal/election"
	"github.com/repro/sift/internal/kv"
	"github.com/repro/sift/internal/memnode"
	"github.com/repro/sift/internal/rdma"
	"github.com/repro/sift/internal/rpc"
)

func main() {
	var (
		id          = flag.Uint("id", 1, "CPU node id (unique per group)")
		listen      = flag.String("listen", ":8000", "client RPC listen address")
		mem         = flag.String("mem", "", "comma-separated memory node addresses (2F+1)")
		f           = flag.Int("f", 1, "fault tolerance level F")
		ec          = flag.Bool("ec", false, "erasure-coded deployment")
		keys        = flag.Int("keys", 16384, "key-value store capacity")
		maxKey      = flag.Int("max-key", 32, "maximum key size in bytes")
		maxValue    = flag.Int("max-value", 992, "maximum value size in bytes")
		kvWALSlots  = flag.Int("kv-wal-slots", 4096, "key-value log entries")
		memWALSlots = flag.Int("mem-wal-slots", 1024, "replicated-memory log entries")
		memWALSlot  = flag.Int("mem-wal-slot-size", 4096, "replicated-memory log slot bytes")
		heartbeat   = flag.Duration("heartbeat", 7*time.Millisecond, "heartbeat write/read interval")
		missed      = flag.Int("missed-beats", 3, "missed heartbeats before election")
		opDeadline  = flag.Duration("op-deadline", time.Second, "per-operation RDMA deadline (0 disables; hung memory nodes fail ops with rdma.ErrDeadline)")
		scrubEvery  = flag.Duration("scrub-interval", 50*time.Millisecond, "background integrity scrub tick (0 disables)")
		noIntegrity = flag.Bool("no-integrity", false, "disable the main-memory checksum strip and read verification (must match memnoded)")
	)
	flag.Parse()

	memNodes := strings.Split(*mem, ",")
	if *mem == "" || len(memNodes)%2 == 0 {
		log.Fatalf("siftd: -mem must list an odd number (2F+1) of memory node addresses")
	}

	params := deploy.Params{
		F: *f, EC: *ec,
		Keys: *keys, MaxKey: *maxKey, MaxValue: *maxValue,
		KVWALSlots:     *kvWALSlots,
		MemWALSlots:    *memWALSlots,
		MemWALSlotSize: *memWALSlot,
		NoIntegrity:    *noIntegrity,
	}
	kcfg, mcfg, err := params.Derive()
	if err != nil {
		log.Fatalf("siftd: %v", err)
	}
	mcfg.MemoryNodes = memNodes
	mcfg.Dial = func(node string) (rdma.Verbs, error) {
		return rdma.DialTCP(node, rdma.DialOpts{
			Exclusive:  []rdma.RegionID{memnode.ReplRegionID},
			OpDeadline: *opDeadline,
		})
	}

	node := core.NewCPUNode(core.Config{
		NodeID: uint16(*id),
		Election: election.Config{
			MemoryNodes: memNodes,
			AdminRegion: memnode.AdminRegionID,
			AdminOffset: memnode.AdminWordOffset,
			Dial: func(node string) (rdma.Verbs, error) {
				return rdma.DialTCP(node, rdma.DialOpts{OpDeadline: *opDeadline})
			},
			HeartbeatInterval: *heartbeat,
			ReadInterval:      *heartbeat,
			MissedBeats:       *missed,
			Seed:              int64(*id) * 104729,
		},
		Memory: mcfg,
		KV:     kcfg,
		ScrubInterval: func() time.Duration {
			if *scrubEvery <= 0 {
				return -1
			}
			return *scrubEvery
		}(),
		OnRoleChange: func(r core.Role) {
			log.Printf("siftd: role -> %s", r)
		},
	})

	srv := rpc.NewServer()
	srv.Handle(rpc.MethodGet, func(payload []byte) ([]byte, error) {
		st := node.Store()
		if st == nil {
			return nil, fmt.Errorf("not coordinator (role %s)", node.Role())
		}
		key, _, err := rpc.DecodeKV(payload)
		if err != nil {
			return nil, err
		}
		v, err := st.Get(key)
		if errors.Is(err, kv.ErrNotFound) {
			return nil, fmt.Errorf("not found")
		}
		return v, err
	})
	srv.Handle(rpc.MethodPut, func(payload []byte) ([]byte, error) {
		st := node.Store()
		if st == nil {
			return nil, fmt.Errorf("not coordinator (role %s)", node.Role())
		}
		key, value, err := rpc.DecodeKV(payload)
		if err != nil {
			return nil, err
		}
		return nil, st.Put(key, value)
	})
	srv.Handle(rpc.MethodDelete, func(payload []byte) ([]byte, error) {
		st := node.Store()
		if st == nil {
			return nil, fmt.Errorf("not coordinator (role %s)", node.Role())
		}
		key, _, err := rpc.DecodeKV(payload)
		if err != nil {
			return nil, err
		}
		return nil, st.Delete(key)
	})
	srv.Handle(rpc.MethodStatus, func([]byte) ([]byte, error) {
		return []byte(node.Role().String()), nil
	})

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("siftd: %v", err)
	}
	go func() {
		if err := srv.Serve(l); err != nil {
			log.Printf("siftd: rpc server: %v", err)
		}
	}()
	log.Printf("siftd: CPU node %d serving clients on %s, memory nodes %v", *id, l.Addr(), memNodes)

	ctx, cancel := context.WithCancel(context.Background())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Printf("siftd: shutting down")
		cancel()
		l.Close()
	}()
	if err := node.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		log.Fatalf("siftd: %v", err)
	}
}
