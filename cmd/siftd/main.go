// Command siftd runs a Sift CPU node: it participates in coordinator
// election against a set of memnoded memory nodes and, while coordinator,
// serves the key-value API over the client RPC protocol. Multiple siftd
// processes with the same -mem list form the group's F+1 CPU nodes.
//
// Usage:
//
//	siftd -id 1 -listen :8000 -mem host1:7000,host2:7000,host3:7000
//
// Clients (cmd/sift-cli, or anything speaking internal/rpc's KV protocol)
// may connect to any siftd; non-coordinators reject operations with an
// error naming their role, and clients retry elsewhere.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/repro/sift/internal/core"
	"github.com/repro/sift/internal/deploy"
	"github.com/repro/sift/internal/election"
	"github.com/repro/sift/internal/kv"
	"github.com/repro/sift/internal/memnode"
	"github.com/repro/sift/internal/obs"
	"github.com/repro/sift/internal/rdma"
	"github.com/repro/sift/internal/repmem"
	"github.com/repro/sift/internal/rpc"
)

func main() {
	var (
		id          = flag.Uint("id", 1, "CPU node id (unique per group)")
		listen      = flag.String("listen", ":8000", "client RPC listen address")
		mem         = flag.String("mem", "", "comma-separated memory node addresses (2F+1)")
		f           = flag.Int("f", 1, "fault tolerance level F")
		ec          = flag.Bool("ec", false, "erasure-coded deployment")
		keys        = flag.Int("keys", 16384, "key-value store capacity")
		maxKey      = flag.Int("max-key", 32, "maximum key size in bytes")
		maxValue    = flag.Int("max-value", 992, "maximum value size in bytes")
		kvWALSlots  = flag.Int("kv-wal-slots", 4096, "key-value log entries")
		memWALSlots = flag.Int("mem-wal-slots", 1024, "replicated-memory log entries")
		memWALSlot  = flag.Int("mem-wal-slot-size", 4096, "replicated-memory log slot bytes")
		heartbeat   = flag.Duration("heartbeat", 7*time.Millisecond, "heartbeat write/read interval")
		missed      = flag.Int("missed-beats", 3, "missed heartbeats before election")
		opDeadline  = flag.Duration("op-deadline", time.Second, "per-operation RDMA deadline (0 disables; hung memory nodes fail ops with rdma.ErrDeadline)")
		scrubEvery  = flag.Duration("scrub-interval", 50*time.Millisecond, "background integrity scrub tick (0 disables)")
		noIntegrity = flag.Bool("no-integrity", false, "disable the main-memory checksum strip and read verification (must match memnoded)")
		debugAddr   = flag.String("debug-addr", "", "debug HTTP listen address serving /metrics, /healthz, /statusz, /events, /debug/pprof ('' disables)")
	)
	flag.Parse()

	memNodes := strings.Split(*mem, ",")
	if *mem == "" || len(memNodes)%2 == 0 {
		log.Fatalf("siftd: -mem must list an odd number (2F+1) of memory node addresses")
	}

	params := deploy.Params{
		F: *f, EC: *ec,
		Keys: *keys, MaxKey: *maxKey, MaxValue: *maxValue,
		KVWALSlots:     *kvWALSlots,
		MemWALSlots:    *memWALSlots,
		MemWALSlotSize: *memWALSlot,
		NoIntegrity:    *noIntegrity,
	}
	kcfg, mcfg, err := params.Derive()
	if err != nil {
		log.Fatalf("siftd: %v", err)
	}
	mcfg.MemoryNodes = memNodes
	mcfg.Dial = func(node string) (rdma.Verbs, error) {
		return rdma.DialTCP(node, rdma.DialOpts{
			Exclusive:  []rdma.RegionID{memnode.ReplRegionID},
			OpDeadline: *opDeadline,
		})
	}

	reg := obs.NewRegistry()
	obs.RegisterProcess(reg)
	events := obs.NewRing(obs.DefaultRingSize)
	latency := &repmem.LatencyHooks{}
	mcfg.Latency = latency
	reg.Observe("sift_repmem_write_seconds", "Logged write commit latency (WAL append quorum).", &latency.Write)
	reg.Observe("sift_repmem_direct_write_seconds", "Direct-zone write commit latency.", &latency.DirectWrite)
	reg.Observe("sift_repmem_read_seconds", "Main-space read latency.", &latency.Read)
	reg.Observe("sift_repmem_quorum_wait_seconds", "Quorum ack wait inside a write fan-out.", &latency.Quorum)

	node := core.NewCPUNode(core.Config{
		NodeID: uint16(*id),
		Election: election.Config{
			MemoryNodes: memNodes,
			AdminRegion: memnode.AdminRegionID,
			AdminOffset: memnode.AdminWordOffset,
			Dial: func(node string) (rdma.Verbs, error) {
				return rdma.DialTCP(node, rdma.DialOpts{OpDeadline: *opDeadline})
			},
			HeartbeatInterval: *heartbeat,
			ReadInterval:      *heartbeat,
			MissedBeats:       *missed,
			Seed:              int64(*id) * 104729,
		},
		Memory: mcfg,
		KV:     kcfg,
		ScrubInterval: func() time.Duration {
			if *scrubEvery <= 0 {
				return -1
			}
			return *scrubEvery
		}(),
		OnRoleChange: func(r core.Role) {
			log.Printf("siftd: role -> %s", r)
		},
		Events: events,
	})

	// Counters and gauges read through the coordinator's layers at scrape
	// time; they report zero while this node is a follower.
	memStat := func(f func(repmem.Stats) uint64) func() float64 {
		return func() float64 {
			if st := node.Store(); st != nil {
				return float64(f(st.MemoryStats()))
			}
			return 0
		}
	}
	reg.CounterFunc("sift_repmem_quorum_writes_total", "Writes committed on a majority (logged + direct).",
		memStat(func(s repmem.Stats) uint64 { return s.Writes + s.DirectWrites }))
	reg.CounterFunc("sift_repmem_reads_total", "Main-space reads served.",
		memStat(func(s repmem.Stats) uint64 { return s.Reads }))
	reg.CounterFunc("sift_repmem_node_failures_total", "Memory node failure detections.",
		memStat(func(s repmem.Stats) uint64 { return s.NodeFailures }))
	reg.CounterFunc("sift_repmem_node_recoveries_total", "Memory node recoveries completed.",
		memStat(func(s repmem.Stats) uint64 { return s.NodeRecovered }))
	reg.CounterFunc("sift_repmem_node_suspected_total", "Live-to-suspect transitions (gray-failure detections).",
		memStat(func(s repmem.Stats) uint64 { return s.NodeSuspected }))
	reg.CounterFunc("sift_repmem_read_repairs_total", "Reads that triggered an inline block repair.",
		memStat(func(s repmem.Stats) uint64 { return s.ReadRepairs }))
	reg.CounterFunc("sift_repmem_corruptions_total", "Replica blocks that failed their checksum or diverged.",
		memStat(func(s repmem.Stats) uint64 { return s.CorruptionsDetected }))
	reg.CounterFunc("sift_scrub_passes_total", "Completed full scrub sweeps.",
		memStat(func(s repmem.Stats) uint64 { return s.ScrubPasses }))
	reg.CounterFunc("sift_election_campaigns_total", "Election campaigns started by this CPU node.",
		func() float64 { return float64(node.Elections()) })
	reg.CounterFunc("sift_election_promotions_total", "Coordinator promotions on this CPU node.",
		func() float64 { return float64(node.Promotions()) })
	reg.CounterFunc("sift_election_dethronements_total", "Times this node was dethroned by a heartbeat failure.",
		func() float64 { return float64(node.Dethronements()) })
	reg.GaugeFunc("sift_election_term", "Term this node coordinates (0 when follower).",
		func() float64 { return float64(node.Term()) })
	reg.GaugeFunc("sift_is_coordinator", "1 while this node is the serving coordinator.",
		func() float64 {
			if node.Store() != nil {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("sift_pipeline_queue_depth", "Current depth of the per-node write worker queues.",
		func() float64 {
			if st := node.Store(); st != nil {
				cur, _ := st.Memory().QueueDepth()
				return float64(cur)
			}
			return 0
		})

	// instrument wraps a client RPC handler with per-op throughput, error,
	// and latency metrics.
	instrument := func(op string, h func([]byte) ([]byte, error)) func([]byte) ([]byte, error) {
		lat := reg.Histogram(fmt.Sprintf("sift_client_op_seconds{op=%q}", op), "Client RPC operation latency.")
		ops := reg.Counter(fmt.Sprintf("sift_client_ops_total{op=%q}", op), "Client RPC operations served.")
		errs := reg.Counter(fmt.Sprintf("sift_client_op_errors_total{op=%q}", op), "Client RPC operations that returned an error.")
		return func(payload []byte) ([]byte, error) {
			start := time.Now()
			out, err := h(payload)
			lat.Record(time.Since(start))
			ops.Inc()
			if err != nil {
				errs.Inc()
			}
			return out, err
		}
	}

	srv := rpc.NewServer()
	srv.Handle(rpc.MethodGet, instrument("get", func(payload []byte) ([]byte, error) {
		st := node.Store()
		if st == nil {
			return nil, fmt.Errorf("not coordinator (role %s)", node.Role())
		}
		key, _, err := rpc.DecodeKV(payload)
		if err != nil {
			return nil, err
		}
		v, err := st.Get(key)
		if errors.Is(err, kv.ErrNotFound) {
			return nil, fmt.Errorf("not found")
		}
		return v, err
	}))
	srv.Handle(rpc.MethodPut, instrument("put", func(payload []byte) ([]byte, error) {
		st := node.Store()
		if st == nil {
			return nil, fmt.Errorf("not coordinator (role %s)", node.Role())
		}
		key, value, err := rpc.DecodeKV(payload)
		if err != nil {
			return nil, err
		}
		return nil, st.Put(key, value)
	}))
	srv.Handle(rpc.MethodDelete, instrument("delete", func(payload []byte) ([]byte, error) {
		st := node.Store()
		if st == nil {
			return nil, fmt.Errorf("not coordinator (role %s)", node.Role())
		}
		key, _, err := rpc.DecodeKV(payload)
		if err != nil {
			return nil, err
		}
		return nil, st.Delete(key)
	}))
	srv.Handle(rpc.MethodStatus, func([]byte) ([]byte, error) {
		return []byte(node.Role().String()), nil
	})
	// Reconfiguration verbs. Only the coordinator drives state transfer;
	// machines for joining addresses must already be running (fresh
	// memnoded processes) — the coordinator fills them. The -mem flag is
	// only the seed list: committed epochs discovered from the admin
	// regions supersede it.
	srv.Handle(rpc.MethodAdmin, instrument("admin", func(payload []byte) ([]byte, error) {
		args := strings.Fields(string(payload))
		if len(args) == 0 {
			return nil, fmt.Errorf("admin: empty verb")
		}
		snap := node.ConfigSnapshot()
		if args[0] == "epoch" {
			return []byte(fmt.Sprintf("epoch %d members %s ec %d+%d",
				snap.Epoch, strings.Join(snap.Members, ","), snap.ECData, snap.ECParity)), nil
		}
		if node.Store() == nil {
			return nil, fmt.Errorf("not coordinator (role %s)", node.Role())
		}
		switch args[0] {
		case "replace":
			if len(args) != 3 {
				return nil, fmt.Errorf("usage: replace <old-addr> <new-addr>")
			}
			if err := node.ReplaceMemoryNode(args[1], args[2]); err != nil {
				return nil, err
			}
		case "add":
			if len(args) != 2 {
				return nil, fmt.Errorf("usage: add <new-addr>")
			}
			if snap.ECData > 0 {
				return nil, fmt.Errorf("admin: cannot add a single node to an erasure-coded group; use restripe")
			}
			if err := node.RestripeMemoryNodes(append(snap.Members, args[1]), 0, 0); err != nil {
				return nil, err
			}
		case "remove":
			if len(args) != 2 {
				return nil, fmt.Errorf("usage: remove <addr>")
			}
			if snap.ECData > 0 {
				return nil, fmt.Errorf("admin: cannot remove a single node from an erasure-coded group; use restripe")
			}
			members := make([]string, 0, len(snap.Members))
			for _, m := range snap.Members {
				if m != args[1] {
					members = append(members, m)
				}
			}
			if len(members) == len(snap.Members) {
				return nil, fmt.Errorf("admin: %q is not a memory node", args[1])
			}
			if err := node.RestripeMemoryNodes(members, 0, 0); err != nil {
				return nil, err
			}
		case "restripe":
			if len(args) != 2 && len(args) != 4 {
				return nil, fmt.Errorf("usage: restripe <addr1,addr2,...> [ec-data ec-parity]")
			}
			members := strings.Split(args[1], ",")
			ecData, ecParity := 0, 0
			if len(args) == 4 {
				var err error
				if ecData, err = strconv.Atoi(args[2]); err != nil {
					return nil, fmt.Errorf("admin: ec-data: %w", err)
				}
				if ecParity, err = strconv.Atoi(args[3]); err != nil {
					return nil, fmt.Errorf("admin: ec-parity: %w", err)
				}
			}
			if err := node.RestripeMemoryNodes(members, ecData, ecParity); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("admin: unknown verb %q", args[0])
		}
		snap = node.ConfigSnapshot()
		return []byte(fmt.Sprintf("epoch %d members %s",
			snap.Epoch, strings.Join(snap.Members, ","))), nil
	}))

	if *debugAddr != "" {
		healthz := func() error {
			st := node.Store()
			if st == nil {
				return nil // follower or candidate: healthy, just not serving
			}
			health := st.MemoryHealth()
			live := 0
			for _, h := range health {
				if h.State == "live" {
					live++
				}
			}
			if need := len(health)/2 + 1; live < need {
				return fmt.Errorf("only %d of %d memory nodes live (need %d)", live, len(health), need)
			}
			return nil
		}
		statusz := func() any {
			doc := map[string]any{
				"node_id":       *id,
				"role":          node.Role().String(),
				"term":          node.Term(),
				"elections":     node.Elections(),
				"promotions":    node.Promotions(),
				"dethronements": node.Dethronements(),
				"memory_nodes":  node.ConfigSnapshot().Members,
				"config_epoch":  node.ConfigEpoch(),
				"events_seen":   events.Seq(),
			}
			if st := node.Store(); st != nil {
				doc["kv"] = st.Stats()
				doc["repmem"] = st.MemoryStats()
				doc["health"] = st.MemoryHealth()
				cur, max := st.Memory().QueueDepth()
				doc["pipeline"] = map[string]int64{"queue_depth": cur, "queue_depth_max": max}
			}
			return doc
		}
		_, addr, err := obs.Start(*debugAddr, obs.Options{
			Registry: reg, Events: events, Healthz: healthz, Statusz: statusz,
		})
		if err != nil {
			log.Fatalf("siftd: %v", err)
		}
		log.Printf("siftd: debug server on http://%s (/metrics /healthz /statusz /events /debug/pprof)", addr)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("siftd: %v", err)
	}
	go func() {
		if err := srv.Serve(l); err != nil {
			log.Printf("siftd: rpc server: %v", err)
		}
	}()
	log.Printf("siftd: CPU node %d serving clients on %s, memory nodes %v", *id, l.Addr(), memNodes)

	ctx, cancel := context.WithCancel(context.Background())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Printf("siftd: shutting down")
		cancel()
		l.Close()
	}()
	if err := node.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		log.Fatalf("siftd: %v", err)
	}
}
