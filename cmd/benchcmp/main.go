// Command benchcmp is the benchmark regression gate: it diffs a fresh
// BENCH_<n>.json against the tracked bench-baseline.json with per-metric
// tolerance bands and exits nonzero when any metric regresses outside its
// band (or silently disappears). Latency- and cost-shaped metrics
// (p50/p99/p999, *_ms, *_us, cost_per_*) are compared lower-is-better;
// everything else higher-is-better.
//
// Usage:
//
//	benchcmp -baseline bench-baseline.json -new BENCH_10.json
//	benchcmp ... -tolerance 0.5 -tol wan_put_p99_ms=1.5 -tol capacity=0.6
//
// Re-anchor an intentional performance change with `make bench-baseline`.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/repro/sift/internal/bench/compare"
)

func main() {
	var (
		baseline     = flag.String("baseline", "bench-baseline.json", "tracked baseline document")
		fresh        = flag.String("new", "", "fresh benchmark document to gate")
		tolerance    = flag.Float64("tolerance", 0.35, "default relative tolerance band (0.35 = ±35%)")
		allowMissing = flag.Bool("allow-missing", false, "baseline metrics absent from the new document are notes, not failures")
		ignore       = flag.String("ignore", "cpus,generated", "comma-separated path substrings to skip")
		quiet        = flag.Bool("quiet", false, "print only regressions")
	)
	perMetric := map[string]float64{}
	flag.Func("tol", "per-metric override as pathprefix=band, repeatable (e.g. -tol wan_put_p99_ms=1.5)", func(s string) error {
		prefix, val, ok := strings.Cut(s, "=")
		if !ok {
			return fmt.Errorf("want pathprefix=band, got %q", s)
		}
		band, err := strconv.ParseFloat(val, 64)
		if err != nil || band <= 0 {
			return fmt.Errorf("bad band in %q", s)
		}
		perMetric[prefix] = band
		return nil
	})
	flag.Parse()
	if *fresh == "" {
		fmt.Fprintln(os.Stderr, "benchcmp: -new is required")
		os.Exit(2)
	}

	baseRaw, err := os.ReadFile(*baseline)
	if err != nil {
		fatal(err)
	}
	freshRaw, err := os.ReadFile(*fresh)
	if err != nil {
		fatal(err)
	}
	rep, err := compare.CompareFiles(baseRaw, freshRaw, compare.Options{
		Tolerance:    *tolerance,
		PerMetric:    perMetric,
		Ignore:       strings.Split(*ignore, ","),
		AllowMissing: *allowMissing,
	})
	if err != nil {
		fatal(err)
	}

	if *quiet {
		for _, f := range rep.Regressions() {
			fmt.Printf("%-10s %s base=%.4g new=%.4g\n", f.Status, f.Path, f.Base, f.New)
		}
	} else {
		fmt.Print(rep)
	}
	if rep.Failed() {
		fmt.Fprintf(os.Stderr, "benchcmp: %d metric(s) regressed vs %s (re-anchor intentional changes with `make bench-baseline`)\n",
			len(rep.Regressions()), *baseline)
		os.Exit(1)
	}
	fmt.Printf("benchcmp: %d metrics within tolerance of %s\n", len(rep.Findings), *baseline)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcmp:", err)
	os.Exit(1)
}
