// Command backupsim regenerates Figure 8: it replays synthetic
// Google-cluster-style failure traces against G Sift groups sharing a
// backup CPU pool of B nodes and reports the average added recovery time
// per fault for each (G, B) combination.
//
// Usage:
//
//	backupsim                          # paper's sweep, few repetitions
//	backupsim -reps 50                 # paper's repetition count
//	backupsim -groups 100,1000 -backups 0,2,4,6
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"github.com/repro/sift/internal/backuppool"
)

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	var (
		groupsFlag  = flag.String("groups", "10,100,500,1000,2000,3000", "group counts (Figure 8's series)")
		backupsFlag = flag.String("backups", "0,1,2,4,6,8,12,16,20", "backup pool sizes (x axis)")
		reps        = flag.Int("reps", 5, "repetitions per point (paper: 50)")
		seed        = flag.Int64("seed", 1, "base seed")
	)
	flag.Parse()

	groups, err := parseInts(*groupsFlag)
	if err != nil {
		log.Fatalf("backupsim: -groups: %v", err)
	}
	backups, err := parseInts(*backupsFlag)
	if err != nil {
		log.Fatalf("backupsim: -backups: %v", err)
	}

	fmt.Printf("Figure 8: added recovery time per fault (s) vs backup pool size\n")
	fmt.Printf("(synthetic 29-day, 12500-machine trace; 100 s VM provisioning; %d reps)\n\n", *reps)

	sweep := backuppool.Sweep(groups, backups, *reps, *seed)

	w := tabwriter.NewWriter(os.Stdout, 4, 4, 2, ' ', tabwriter.AlignRight)
	defer w.Flush()
	fmt.Fprint(w, "backups\t")
	for _, g := range groups {
		fmt.Fprintf(w, "%d groups\t", g)
	}
	fmt.Fprintln(w)
	for bi, b := range backups {
		fmt.Fprintf(w, "%d\t", b)
		for _, g := range groups {
			fmt.Fprintf(w, "%.3f\t", sweep[g][bi].Seconds())
		}
		fmt.Fprintln(w)
	}
}
