// Command benchjson runs the repository's headline performance probes and
// emits one JSON document per PR (BENCH_<n>.json, n from -pr; see `make
// bench-json`): erasure encode/reconstruct bandwidth, cluster put
// throughput, read latency percentiles on both the coordinator and
// lease-based backup read paths, put throughput while memory nodes are
// being live-replaced, open-loop knee throughput behind the shard router
// at 1, 2, and 4 consensus groups, WAN put throughput with p99 latency at
// 0%, 5%, and 15% sustained Gilbert–Elliott loss, and — from the
// open-loop capacity sweeps (DESIGN.md §17) — knee throughput,
// latency-at-knee percentiles, and cost-per-million-ops for the plain,
// sharded, and WAN deployments. The same document is diffed against the
// tracked bench-baseline.json by cmd/benchcmp in CI's bench-gate job.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	sift "github.com/repro/sift"
	"github.com/repro/sift/internal/bench"
	"github.com/repro/sift/internal/cloudcost"
	"github.com/repro/sift/internal/erasure"
	"github.com/repro/sift/internal/metrics"
)

type capacityPoint struct {
	// KneeOpsPerSec is the highest sustained open-loop throughput: the
	// last swept arrival rate served without queue growth (≥90% of
	// arrivals served, no drops, no end-of-window backlog).
	KneeOpsPerSec float64 `json:"knee_ops_per_sec"`
	// OfferedAtKnee is the arrival rate of that step.
	OfferedAtKnee float64 `json:"offered_ops_per_sec_at_knee"`
	// Latency at the knee, measured from scheduled arrival time (queue
	// wait included — coordinated omission is charged, not hidden).
	P50Ms  float64 `json:"p50_ms_at_knee"`
	P99Ms  float64 `json:"p99_ms_at_knee"`
	P999Ms float64 `json:"p999_ms_at_knee"`
}

type doc struct {
	Generated string `json:"generated"`
	Go        string `json:"go"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`

	// MB/s over the logical block, 64 KiB blocks, k=F+1 data + F parity.
	// Reconstruct charges only the rebuilt chunks (F×chunk bytes per
	// call), timed without the shape-restoring bookkeeping.
	EncodeMBs      map[string]float64 `json:"encode_mb_s"`
	ReconstructMBs map[string]float64 `json:"reconstruct_mb_s"`

	// In-process cluster (F=1, no simulated latency), 992-byte values.
	PutOpsPerSec float64 `json:"put_ops_per_sec"`
	ReadP50Us    float64 `json:"read_p50_us"`
	ReadP99Us    float64 `json:"read_p99_us"`

	// Same reads with lease-based backup reads enabled.
	BackupReadP50Us float64 `json:"backup_read_p50_us"`
	BackupReadP99Us float64 `json:"backup_read_p99_us"`

	// Put throughput while memory nodes are live-replaced back to back
	// (online reconfiguration, DESIGN.md §14), how many replacements
	// completed during the probe window, and how many puts were skipped
	// (with backoff) because no coordinator was serving.
	ReplacePutOpsPerSec float64 `json:"put_ops_per_sec_during_replace"`
	Replacements        int     `json:"replacements_during_probe"`
	ReplaceSkippedPuts  int     `json:"puts_skipped_no_coordinator"`

	// Open-loop knee throughput behind the shard router (DESIGN.md §15,
	// §17) at 1, 2, and 4 consensus groups on 2ms links: each
	// configuration is swept to its own saturation point, so the numbers
	// are comparable regardless of client population. Keys "groups_1",
	// "groups_2", "groups_4".
	ShardKneeOpsPerSec map[string]float64 `json:"shard_knee_ops_per_sec"`
	// 4-group knee over 1-group knee. Physically ≤ the group count; the
	// 4.31 recorded in BENCH_9.json was a closed-loop artifact (the
	// 1-group baseline was under-loaded; see EXPERIMENTS.md).
	ShardSpeedup4x float64 `json:"shard_speedup_4_groups"`

	// WAN deployment (40ms RTT, one memory node and the client hop across
	// the wide-area link, adaptive FEC transport): acknowledged puts/s and
	// put p99 (ms) at 0%, 5%, and 15% sustained Gilbert–Elliott loss.
	// Keys "loss_0", "loss_5", "loss_15" (DESIGN.md §16).
	WANPutOpsPerSec map[string]float64 `json:"wan_put_ops_per_sec"`
	WANPutP99Ms     map[string]float64 `json:"wan_put_p99_ms"`
	// 15%-loss throughput over lossless-WAN throughput: how much of the
	// wide-area baseline survives heavy sustained loss.
	WANRetention15 float64 `json:"wan_put_retention_15pct_loss"`

	// Open-loop capacity (DESIGN.md §17): knee throughput and
	// latency-at-knee for the plain F=1 deployment, the 4-group sharded
	// deployment (2ms links), and the WAN deployment at 5% loss.
	// Keys "plain", "shard_4g", "wan_5pct".
	Capacity map[string]capacityPoint `json:"capacity"`
	// The paper's headline metric, fed from the measured knees and the
	// §6.4 Table 2 machine pricing: $ per million ops per deployment per
	// provider. Outer keys match Capacity; inner keys "aws", "gcp".
	CostPerMillionOps map[string]map[string]float64 `json:"cost_per_million_ops"`
}

func main() {
	pr := flag.Int("pr", 10, "PR number; the default output path is BENCH_<pr>.json")
	out := flag.String("out", "", "output path (default BENCH_<pr>.json)")
	dur := flag.Duration("duration", 2*time.Second, "per-probe measurement duration")
	flag.Parse()
	if *out == "" {
		*out = fmt.Sprintf("BENCH_%d.json", *pr)
	}

	d := doc{
		Generated:         time.Now().UTC().Format(time.RFC3339),
		Go:                runtime.Version(),
		GOOS:              runtime.GOOS,
		GOARCH:            runtime.GOARCH,
		CPUs:              runtime.NumCPU(),
		EncodeMBs:         map[string]float64{},
		ReconstructMBs:    map[string]float64{},
		Capacity:          map[string]capacityPoint{},
		CostPerMillionOps: map[string]map[string]float64{},
	}

	for _, f := range []int{1, 2} {
		// Round 64 KiB up to a multiple of k, as the deploy layer does.
		k := f + 1
		block := (64*1024 + k - 1) / k * k
		enc, rec, err := ecBandwidth(f, block, *dur)
		if err != nil {
			fatal(err)
		}
		key := fmt.Sprintf("f%d_64k", f)
		d.EncodeMBs[key] = round1(enc)
		d.ReconstructMBs[key] = round1(rec)
	}

	put, p50, p99, err := clusterProbe(false, *dur)
	if err != nil {
		fatal(err)
	}
	d.PutOpsPerSec = round1(put)
	d.ReadP50Us = round1(p50)
	d.ReadP99Us = round1(p99)

	_, bp50, bp99, err := clusterProbe(true, *dur)
	if err != nil {
		fatal(err)
	}
	d.BackupReadP50Us = round1(bp50)
	d.BackupReadP99Us = round1(bp99)

	rput, nrepl, nskip, err := reconfigProbe(*dur)
	if err != nil {
		fatal(err)
	}
	d.ReplacePutOpsPerSec = round1(rput)
	d.Replacements = nrepl
	d.ReplaceSkippedPuts = nskip

	// Sweep shape shared by the capacity probes: each step measures for
	// about a third of the per-probe budget. The worker count bounds
	// in-flight concurrency, not offered load (that's the arrival rate),
	// and is held constant across the configurations being compared; it
	// just has to exceed knee×latency for the slowest deployment.
	sweep := bench.CapacityConfig{
		StepDuration: maxDur(*dur/3, 400*time.Millisecond),
		StepWarmup:   150 * time.Millisecond,
		Workers:      128,
	}
	slowSweep := sweep
	slowSweep.Workers = 256 // 2ms shard links / 40ms WAN RTT need deeper in-flight budgets

	d.ShardKneeOpsPerSec = map[string]float64{}
	shardSweep := slowSweep
	shardSweep.MinRate = 200
	for _, groups := range []int{1, 2, 4} {
		res, err := bench.ShardPutCapacity(groups, 2*time.Millisecond, bench.DeploymentCapacityConfig{
			Sweep: shardSweep, Seed: 42,
		})
		if err != nil {
			fatal(err)
		}
		d.ShardKneeOpsPerSec[fmt.Sprintf("groups_%d", groups)] = round1(res.KneeOpsPerSec)
		if groups == 4 {
			d.Capacity["shard_4g"] = toCapacityPoint(res)
		}
	}
	if base := d.ShardKneeOpsPerSec["groups_1"]; base > 0 {
		ratio := d.ShardKneeOpsPerSec["groups_4"] / base
		d.ShardSpeedup4x = float64(int64(ratio*100+0.5)) / 100
	}

	d.WANPutOpsPerSec = map[string]float64{}
	d.WANPutP99Ms = map[string]float64{}
	for _, loss := range []float64{0, 0.05, 0.15} {
		tput, p99, err := bench.WANPutThroughput(bench.WANBenchConfig{
			LossRate: loss, Duration: *dur, Seed: 42,
		})
		if err != nil {
			fatal(err)
		}
		key := fmt.Sprintf("loss_%d", int(loss*100))
		d.WANPutOpsPerSec[key] = round1(tput)
		d.WANPutP99Ms[key] = round1(p99)
	}
	if base := d.WANPutOpsPerSec["loss_0"]; base > 0 {
		ratio := d.WANPutOpsPerSec["loss_15"] / base
		d.WANRetention15 = float64(int64(ratio*100+0.5)) / 100
	}

	plainSweep := sweep
	plainSweep.MinRate = 400
	plainCap, err := bench.PlainPutCapacity(bench.DeploymentCapacityConfig{Sweep: plainSweep, Seed: 42})
	if err != nil {
		fatal(err)
	}
	d.Capacity["plain"] = toCapacityPoint(plainCap)

	wanCap, err := bench.WANPutCapacity(0.05, bench.DeploymentCapacityConfig{Sweep: slowSweep, Seed: 42})
	if err != nil {
		fatal(err)
	}
	d.Capacity["wan_5pct"] = toCapacityPoint(wanCap)

	// Price each deployment at its measured knee. The plain and WAN
	// deployments are one Sift group (the WAN changes the network, not
	// the bill); the sharded deployment is 4 groups sharing a backup pool
	// of 2 (§5.2).
	deployments := map[string]cloudcost.Deployment{
		"plain":    {System: cloudcost.Sift, F: 1},
		"shard_4g": {System: cloudcost.Sift, F: 1, SharedBackups: true, Groups: 4, BackupPool: 2},
		"wan_5pct": {System: cloudcost.Sift, F: 1},
	}
	for name, dep := range deployments {
		knee := d.Capacity[name].KneeOpsPerSec
		costs := map[string]float64{}
		for _, p := range []cloudcost.Provider{cloudcost.AWS, cloudcost.GCP} {
			c, err := cloudcost.DeploymentCostPerMillionOps(dep, p, knee)
			if err != nil {
				fatal(err)
			}
			costs[providerKey(p)] = round4(c)
		}
		d.CostPerMillionOps[name] = costs
	}

	buf, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n%s", *out, buf)
}

func toCapacityPoint(res bench.CapacityResult) capacityPoint {
	return capacityPoint{
		KneeOpsPerSec: round1(res.KneeOpsPerSec),
		OfferedAtKnee: round1(res.Knee.Offered),
		P50Ms:         round3(res.Knee.P50.Seconds() * 1e3),
		P99Ms:         round3(res.Knee.P99.Seconds() * 1e3),
		P999Ms:        round3(res.Knee.P999.Seconds() * 1e3),
	}
}

func providerKey(p cloudcost.Provider) string {
	if p == cloudcost.GCP {
		return "gcp"
	}
	return "aws"
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// ecBandwidth measures EncodeTo and Reconstruct bandwidth for k=f+1, m=f
// at the given block size. Encode charges the full logical block per
// call; Reconstruct charges only the f rebuilt chunks, and the
// missing-chunk setup and shape restoration run outside the timed region
// (the old probe timed the restoring copies and charged the whole block,
// overstating reconstruct bandwidth by roughly k/f).
func ecBandwidth(f, block int, dur time.Duration) (encMBs, recMBs float64, err error) {
	code, err := erasure.New(f+1, f)
	if err != nil {
		return 0, 0, err
	}
	data := make([]byte, block)
	rng := rand.New(rand.NewSource(42))
	rng.Read(data)
	chunkLen, err := code.ChunkSize(block)
	if err != nil {
		return 0, 0, err
	}
	n := code.K() + code.M()
	chunks := make([][]byte, n)
	for i := range chunks {
		chunks[i] = make([]byte, chunkLen)
	}

	encMBs = throughput(dur, block, func() error { return code.EncodeTo(data, chunks) })

	// Reconstruct with the first f chunks missing (worst case: data
	// chunks rebuilt from parity). Only Reconstruct itself is timed.
	var busy time.Duration
	calls := 0
	for warm := 0; warm < 8; warm++ {
		for i := 0; i < f; i++ {
			chunks[i] = nil
		}
		if err := code.Reconstruct(chunks); err != nil {
			return 0, 0, err
		}
	}
	for busy < dur {
		for i := 0; i < f; i++ {
			chunks[i] = nil
		}
		t0 := time.Now()
		rerr := code.Reconstruct(chunks)
		busy += time.Since(t0)
		if rerr != nil {
			return 0, 0, rerr
		}
		calls++
	}
	recMBs = float64(calls) * float64(f*chunkLen) / 1e6 / busy.Seconds()
	return encMBs, recMBs, nil
}

// throughput runs fn repeatedly for roughly dur and returns MB/s given
// bytes of useful work per call.
func throughput(dur time.Duration, bytes int, fn func() error) float64 {
	// Warmup.
	for i := 0; i < 8; i++ {
		if err := fn(); err != nil {
			fatal(err)
		}
	}
	start := time.Now()
	calls := 0
	for time.Since(start) < dur {
		if err := fn(); err != nil {
			fatal(err)
		}
		calls++
	}
	elapsed := time.Since(start).Seconds()
	return float64(calls) * float64(bytes) / 1e6 / elapsed
}

// clusterProbe measures put throughput and get latency percentiles against
// an in-process F=1 cluster, optionally with lease-based backup reads.
func clusterProbe(backupReads bool, dur time.Duration) (putOps, readP50Us, readP99Us float64, err error) {
	cfg := sift.Config{F: 1, Keys: 4096, MaxValueSize: 992}
	if backupReads {
		cfg.BackupReads = true
		cfg.CPUNodes = 3
	}
	cl, err := sift.NewCluster(cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	defer cl.Close()
	c := cl.Client()

	val := make([]byte, 992)
	key := func(i int) []byte { return []byte(fmt.Sprintf("user%012d", i)) }
	for i := 0; i < cfg.Keys; i++ {
		if err := c.Put(key(i), val); err != nil {
			return 0, 0, 0, err
		}
	}

	start := time.Now()
	puts := 0
	for time.Since(start) < dur {
		if err := c.Put(key(puts%cfg.Keys), val); err != nil {
			return 0, 0, 0, err
		}
		puts++
	}
	putOps = float64(puts) / time.Since(start).Seconds()

	var hist metrics.Histogram
	start = time.Now()
	for i := 0; time.Since(start) < dur; i++ {
		t0 := time.Now()
		if _, err := c.Get(key(i % cfg.Keys)); err != nil {
			return 0, 0, 0, err
		}
		hist.Record(time.Since(t0))
	}
	return putOps, float64(hist.Percentile(50)) / 1e3, float64(hist.Percentile(99)) / 1e3, nil
}

func round1(v float64) float64 {
	return float64(int64(v*10+0.5)) / 10
}

func round3(v float64) float64 {
	return float64(int64(v*1000+0.5)) / 1000
}

func round4(v float64) float64 {
	return float64(int64(v*10000+0.5)) / 10000
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// reconfigProbe measures put throughput while memory nodes are replaced
// back to back — the bounded-degradation number for online
// reconfiguration. Puts that land in a no-coordinator window back off
// briefly (instead of hot-spinning a core against the failover path,
// which distorted the number on small runners) and are counted in
// skipped; any other error is fatal.
func reconfigProbe(dur time.Duration) (putOps float64, replacements, skipped int, err error) {
	cfg := sift.Config{F: 1, Keys: 4096, MaxValueSize: 992}
	cl, err := sift.NewCluster(cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	defer cl.Close()
	c := cl.Client()

	val := make([]byte, 992)
	key := func(i int) []byte { return []byte(fmt.Sprintf("user%012d", i)) }
	for i := 0; i < cfg.Keys; i++ {
		if err := c.Put(key(i), val); err != nil {
			return 0, 0, 0, err
		}
	}

	stop := make(chan struct{})
	done := make(chan int)
	go func() {
		n := 0
		defer func() { done <- n }()
		for {
			select {
			case <-stop:
				return
			default:
			}
			victim := cl.MemoryNodes()[0]
			if _, err := cl.ReplaceMemoryNode(victim, ""); err != nil {
				return
			}
			n++
		}
	}()

	const noCoordBackoff = 2 * time.Millisecond
	start := time.Now()
	puts := 0
	for time.Since(start) < dur {
		if perr := c.Put(key(puts%cfg.Keys), val); perr != nil {
			if errors.Is(perr, sift.ErrNoCoordinator) {
				skipped++
				time.Sleep(noCoordBackoff)
				continue
			}
			close(stop)
			<-done
			return 0, 0, 0, perr
		}
		puts++
	}
	elapsed := time.Since(start).Seconds()
	close(stop)
	replacements = <-done
	return float64(puts) / elapsed, replacements, skipped, nil
}
