// Command benchjson runs the repository's headline performance probes and
// emits one JSON document (for the benchmark-trajectory record BENCH_9.json):
// erasure encode/reconstruct bandwidth, cluster put throughput, read
// latency percentiles on both the coordinator and lease-based backup read
// paths, put throughput while memory nodes are being live-replaced,
// aggregate put throughput behind the shard router at 1, 2, and 4
// consensus groups, and WAN put throughput with p99 latency at 0%, 5%, and
// 15% sustained Gilbert–Elliott loss through the loss-adaptive FEC
// transport. Invoke via `make bench-json`.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	sift "github.com/repro/sift"
	"github.com/repro/sift/internal/bench"
	"github.com/repro/sift/internal/erasure"
	"github.com/repro/sift/internal/metrics"
)

type doc struct {
	Generated string `json:"generated"`
	Go        string `json:"go"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`

	// MB/s over the logical block, 64 KiB blocks, k=F+1 data + F parity.
	EncodeMBs      map[string]float64 `json:"encode_mb_s"`
	ReconstructMBs map[string]float64 `json:"reconstruct_mb_s"`

	// In-process cluster (F=1, no simulated latency), 992-byte values.
	PutOpsPerSec float64 `json:"put_ops_per_sec"`
	ReadP50Us    float64 `json:"read_p50_us"`
	ReadP99Us    float64 `json:"read_p99_us"`

	// Same reads with lease-based backup reads enabled.
	BackupReadP50Us float64 `json:"backup_read_p50_us"`
	BackupReadP99Us float64 `json:"backup_read_p99_us"`

	// Put throughput while memory nodes are live-replaced back to back
	// (online reconfiguration, DESIGN.md §14), and how many replacements
	// completed during the probe window.
	ReplacePutOpsPerSec float64 `json:"put_ops_per_sec_during_replace"`
	Replacements        int     `json:"replacements_during_probe"`

	// Aggregate put throughput behind the shard router (DESIGN.md §15) at
	// 1, 2, and 4 consensus groups, measured latency-bound (2ms links,
	// closed-loop clients proportional to the group count) so the numbers
	// reflect horizontal scaling rather than single-host CPU contention.
	// Keys "groups_1", "groups_2", "groups_4".
	ShardPutOpsPerSec map[string]float64 `json:"shard_put_ops_per_sec"`
	// 4-group aggregate over 1-group aggregate.
	ShardSpeedup4x float64 `json:"shard_speedup_4_groups"`

	// WAN deployment (40ms RTT, one memory node and the client hop across
	// the wide-area link, adaptive FEC transport): acknowledged puts/s and
	// put p99 (ms) at 0%, 5%, and 15% sustained Gilbert–Elliott loss.
	// Keys "loss_0", "loss_5", "loss_15" (DESIGN.md §16).
	WANPutOpsPerSec map[string]float64 `json:"wan_put_ops_per_sec"`
	WANPutP99Ms     map[string]float64 `json:"wan_put_p99_ms"`
	// 15%-loss throughput over lossless-WAN throughput: how much of the
	// wide-area baseline survives heavy sustained loss.
	WANRetention15 float64 `json:"wan_put_retention_15pct_loss"`
}

func main() {
	out := flag.String("out", "BENCH_9.json", "output path")
	dur := flag.Duration("duration", 2*time.Second, "per-probe measurement duration")
	flag.Parse()

	d := doc{
		Generated:      time.Now().UTC().Format(time.RFC3339),
		Go:             runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		CPUs:           runtime.NumCPU(),
		EncodeMBs:      map[string]float64{},
		ReconstructMBs: map[string]float64{},
	}

	for _, f := range []int{1, 2} {
		// Round 64 KiB up to a multiple of k, as the deploy layer does.
		k := f + 1
		block := (64*1024 + k - 1) / k * k
		enc, rec, err := ecBandwidth(f, block, *dur)
		if err != nil {
			fatal(err)
		}
		key := fmt.Sprintf("f%d_64k", f)
		d.EncodeMBs[key] = round1(enc)
		d.ReconstructMBs[key] = round1(rec)
	}

	put, p50, p99, err := clusterProbe(false, *dur)
	if err != nil {
		fatal(err)
	}
	d.PutOpsPerSec = round1(put)
	d.ReadP50Us = round1(p50)
	d.ReadP99Us = round1(p99)

	_, bp50, bp99, err := clusterProbe(true, *dur)
	if err != nil {
		fatal(err)
	}
	d.BackupReadP50Us = round1(bp50)
	d.BackupReadP99Us = round1(bp99)

	rput, nrepl, err := reconfigProbe(*dur)
	if err != nil {
		fatal(err)
	}
	d.ReplacePutOpsPerSec = round1(rput)
	d.Replacements = nrepl

	d.ShardPutOpsPerSec = map[string]float64{}
	for _, groups := range []int{1, 2, 4} {
		tput, err := bench.ShardPutThroughput(bench.ShardScalingConfig{
			Groups: groups, Duration: *dur, Seed: 42,
		})
		if err != nil {
			fatal(err)
		}
		d.ShardPutOpsPerSec[fmt.Sprintf("groups_%d", groups)] = round1(tput)
	}
	if base := d.ShardPutOpsPerSec["groups_1"]; base > 0 {
		ratio := d.ShardPutOpsPerSec["groups_4"] / base
		d.ShardSpeedup4x = float64(int64(ratio*100+0.5)) / 100
	}

	d.WANPutOpsPerSec = map[string]float64{}
	d.WANPutP99Ms = map[string]float64{}
	for _, loss := range []float64{0, 0.05, 0.15} {
		tput, p99, err := bench.WANPutThroughput(bench.WANBenchConfig{
			LossRate: loss, Duration: *dur, Seed: 42,
		})
		if err != nil {
			fatal(err)
		}
		key := fmt.Sprintf("loss_%d", int(loss*100))
		d.WANPutOpsPerSec[key] = round1(tput)
		d.WANPutP99Ms[key] = round1(p99)
	}
	if base := d.WANPutOpsPerSec["loss_0"]; base > 0 {
		ratio := d.WANPutOpsPerSec["loss_15"] / base
		d.WANRetention15 = float64(int64(ratio*100+0.5)) / 100
	}

	buf, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n%s", *out, buf)
}

// ecBandwidth measures EncodeTo and Reconstruct bandwidth (MB/s of logical
// block) for k=f+1, m=f at the given block size.
func ecBandwidth(f, block int, dur time.Duration) (encMBs, recMBs float64, err error) {
	code, err := erasure.New(f+1, f)
	if err != nil {
		return 0, 0, err
	}
	data := make([]byte, block)
	rng := rand.New(rand.NewSource(42))
	rng.Read(data)
	chunkLen, err := code.ChunkSize(block)
	if err != nil {
		return 0, 0, err
	}
	n := code.K() + code.M()
	chunks := make([][]byte, n)
	for i := range chunks {
		chunks[i] = make([]byte, chunkLen)
	}

	encMBs = throughput(dur, block, func() error { return code.EncodeTo(data, chunks) })

	// Reconstruct with the first f chunks missing (worst case: data chunks
	// rebuilt from parity).
	backup := make([][]byte, n)
	for i := range chunks {
		backup[i] = append([]byte(nil), chunks[i]...)
	}
	recMBs = throughput(dur, block, func() error {
		for i := 0; i < f; i++ {
			chunks[i] = nil
		}
		if err := code.Reconstruct(chunks); err != nil {
			return err
		}
		for i := 0; i < f; i++ {
			copy(chunks[i], backup[i]) // Reconstruct reallocates; keep shape
		}
		return nil
	})
	return encMBs, recMBs, nil
}

// throughput runs fn repeatedly for roughly dur and returns MB/s given
// bytes of useful work per call.
func throughput(dur time.Duration, bytes int, fn func() error) float64 {
	// Warmup.
	for i := 0; i < 8; i++ {
		if err := fn(); err != nil {
			fatal(err)
		}
	}
	start := time.Now()
	calls := 0
	for time.Since(start) < dur {
		if err := fn(); err != nil {
			fatal(err)
		}
		calls++
	}
	elapsed := time.Since(start).Seconds()
	return float64(calls) * float64(bytes) / 1e6 / elapsed
}

// clusterProbe measures put throughput and get latency percentiles against
// an in-process F=1 cluster, optionally with lease-based backup reads.
func clusterProbe(backupReads bool, dur time.Duration) (putOps, readP50Us, readP99Us float64, err error) {
	cfg := sift.Config{F: 1, Keys: 4096, MaxValueSize: 992}
	if backupReads {
		cfg.BackupReads = true
		cfg.CPUNodes = 3
	}
	cl, err := sift.NewCluster(cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	defer cl.Close()
	c := cl.Client()

	val := make([]byte, 992)
	key := func(i int) []byte { return []byte(fmt.Sprintf("user%012d", i)) }
	for i := 0; i < cfg.Keys; i++ {
		if err := c.Put(key(i), val); err != nil {
			return 0, 0, 0, err
		}
	}

	start := time.Now()
	puts := 0
	for time.Since(start) < dur {
		if err := c.Put(key(puts%cfg.Keys), val); err != nil {
			return 0, 0, 0, err
		}
		puts++
	}
	putOps = float64(puts) / time.Since(start).Seconds()

	var hist metrics.Histogram
	start = time.Now()
	for i := 0; time.Since(start) < dur; i++ {
		t0 := time.Now()
		if _, err := c.Get(key(i % cfg.Keys)); err != nil {
			return 0, 0, 0, err
		}
		hist.Record(time.Since(t0))
	}
	return putOps, float64(hist.Percentile(50)) / 1e3, float64(hist.Percentile(99)) / 1e3, nil
}

func round1(v float64) float64 {
	return float64(int64(v*10+0.5)) / 10
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// reconfigProbe measures put throughput while memory nodes are replaced
// back to back — the bounded-degradation number for online
// reconfiguration. Puts that land in a no-coordinator window are skipped,
// not counted; any other error is fatal.
func reconfigProbe(dur time.Duration) (putOps float64, replacements int, err error) {
	cfg := sift.Config{F: 1, Keys: 4096, MaxValueSize: 992}
	cl, err := sift.NewCluster(cfg)
	if err != nil {
		return 0, 0, err
	}
	defer cl.Close()
	c := cl.Client()

	val := make([]byte, 992)
	key := func(i int) []byte { return []byte(fmt.Sprintf("user%012d", i)) }
	for i := 0; i < cfg.Keys; i++ {
		if err := c.Put(key(i), val); err != nil {
			return 0, 0, err
		}
	}

	stop := make(chan struct{})
	done := make(chan int)
	go func() {
		n := 0
		defer func() { done <- n }()
		for {
			select {
			case <-stop:
				return
			default:
			}
			victim := cl.MemoryNodes()[0]
			if _, err := cl.ReplaceMemoryNode(victim, ""); err != nil {
				return
			}
			n++
		}
	}()

	start := time.Now()
	puts := 0
	for time.Since(start) < dur {
		if perr := c.Put(key(puts%cfg.Keys), val); perr != nil {
			if errors.Is(perr, sift.ErrNoCoordinator) {
				continue
			}
			close(stop)
			<-done
			return 0, 0, perr
		}
		puts++
	}
	elapsed := time.Since(start).Seconds()
	close(stop)
	replacements = <-done
	return float64(puts) / elapsed, replacements, nil
}
