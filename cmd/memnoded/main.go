// Command memnoded runs a passive Sift memory node: it registers the
// administrative and replicated memory regions and serves one-sided RDMA
// operations (READ/WRITE/CAS) over TCP. After startup it executes no
// protocol logic whatsoever — the process is the software stand-in for an
// RNIC fronting a block of memory.
//
// The sizing flags must match the coordinator's (cmd/siftd); both derive
// the region layout through the same code path.
//
// Usage:
//
//	memnoded -addr :7000 -keys 100000 -f 1 [-ec]
package main

import (
	"flag"
	"log"
	"net"

	"github.com/repro/sift/internal/deploy"
	"github.com/repro/sift/internal/memnode"
	"github.com/repro/sift/internal/obs"
	"github.com/repro/sift/internal/rdma"
)

func main() {
	var (
		addr        = flag.String("addr", ":7000", "listen address for RDMA-over-TCP")
		f           = flag.Int("f", 1, "fault tolerance level F")
		ec          = flag.Bool("ec", false, "erasure-coded deployment")
		keys        = flag.Int("keys", 16384, "key-value store capacity")
		maxKey      = flag.Int("max-key", 32, "maximum key size in bytes")
		maxValue    = flag.Int("max-value", 992, "maximum value size in bytes")
		kvWALSlots  = flag.Int("kv-wal-slots", 4096, "key-value log entries")
		memWALSlots = flag.Int("mem-wal-slots", 1024, "replicated-memory log entries")
		memWALSlot  = flag.Int("mem-wal-slot-size", 4096, "replicated-memory log slot bytes")
		noIntegrity = flag.Bool("no-integrity", false, "disable the main-memory checksum strip (must match siftd)")
		debugAddr   = flag.String("debug-addr", "", "debug HTTP listen address serving /metrics, /healthz, /statusz, /debug/pprof ('' disables)")
	)
	flag.Parse()

	params := deploy.Params{
		F: *f, EC: *ec,
		Keys: *keys, MaxKey: *maxKey, MaxValue: *maxValue,
		KVWALSlots:     *kvWALSlots,
		MemWALSlots:    *memWALSlots,
		MemWALSlotSize: *memWALSlot,
		NoIntegrity:    *noIntegrity,
	}
	layout, err := params.Layout()
	if err != nil {
		log.Fatalf("memnoded: %v", err)
	}
	node, err := memnode.New(*addr, layout)
	if err != nil {
		log.Fatalf("memnoded: %v", err)
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("memnoded: %v", err)
	}
	if *debugAddr != "" {
		reg := obs.NewRegistry()
		obs.RegisterProcess(reg)
		reg.GaugeFunc("sift_memnode_repl_bytes", "Replicated region size in bytes.",
			func() float64 { return float64(layout.ReplSize()) })
		reg.GaugeFunc("sift_memnode_wal_slots", "Replicated-memory WAL slots.",
			func() float64 { return float64(layout.WALSlots) })
		statusz := func() any {
			return map[string]any{
				"addr":        *addr,
				"layout":      layout,
				"repl_bytes":  layout.ReplSize(),
				"admin_bytes": memnode.AdminSize,
			}
		}
		_, daddr, err := obs.Start(*debugAddr, obs.Options{Registry: reg, Statusz: statusz})
		if err != nil {
			log.Fatalf("memnoded: %v", err)
		}
		log.Printf("memnoded: debug server on http://%s (/metrics /healthz /statusz /debug/pprof)", daddr)
	}
	log.Printf("memnoded: serving %d B replicated region + %d B admin region on %s",
		layout.ReplSize(), memnode.AdminSize, l.Addr())
	if err := rdma.Serve(l, node); err != nil {
		log.Fatalf("memnoded: %v", err)
	}
}
