// Command sift-cli is a small client for a siftd deployment: it issues
// get/put/del/status operations against one or more siftd addresses,
// retrying against the next address when a node is not the coordinator.
//
// Usage:
//
//	sift-cli -servers host1:8000,host2:8000 put mykey myvalue
//	sift-cli -servers host1:8000,host2:8000 get mykey
//	sift-cli -servers host1:8000 status
//
// Admin verbs drive online reconfiguration of the memory-node group (the
// coordinator performs the state transfer; a joining address must already
// run a fresh memnoded):
//
//	sift-cli -servers ... epoch
//	sift-cli -servers ... replace mem1:7000 mem9:7000
//	sift-cli -servers ... add mem9:7000
//	sift-cli -servers ... remove mem1:7000
//	sift-cli -servers ... restripe memA:7000,memB:7000,memC:7000 [ec-data ec-parity]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"github.com/repro/sift/internal/rpc"
)

func main() {
	servers := flag.String("servers", "127.0.0.1:8000", "comma-separated siftd addresses")
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		log.Fatalf("usage: sift-cli [-servers ...] get|put|del|status|epoch|replace|add|remove|restripe [args]")
	}
	addrs := strings.Split(*servers, ",")

	var lastErr error
	for _, addr := range addrs {
		client, err := rpc.Dial(addr)
		if err != nil {
			lastErr = err
			continue
		}
		out, err := run(client, args)
		client.Close()
		if err == nil {
			if out != "" {
				fmt.Println(out)
			}
			return
		}
		lastErr = err
		if !strings.Contains(err.Error(), "not coordinator") {
			break
		}
	}
	log.Fatalf("sift-cli: %v", lastErr)
}

func run(client *rpc.Client, args []string) (string, error) {
	switch args[0] {
	case "get":
		if len(args) != 2 {
			return "", fmt.Errorf("usage: get <key>")
		}
		v, err := client.Call(rpc.MethodGet, rpc.EncodeKV([]byte(args[1]), nil))
		if err != nil {
			return "", err
		}
		return string(v), nil
	case "put":
		if len(args) != 3 {
			return "", fmt.Errorf("usage: put <key> <value>")
		}
		_, err := client.Call(rpc.MethodPut, rpc.EncodeKV([]byte(args[1]), []byte(args[2])))
		return "OK", err
	case "del":
		if len(args) != 2 {
			return "", fmt.Errorf("usage: del <key>")
		}
		_, err := client.Call(rpc.MethodDelete, rpc.EncodeKV([]byte(args[1]), nil))
		return "OK", err
	case "status":
		v, err := client.Call(rpc.MethodStatus, nil)
		if err != nil {
			return "", err
		}
		return string(v), nil
	case "epoch", "replace", "add", "remove", "restripe":
		v, err := client.Call(rpc.MethodAdmin, []byte(strings.Join(args, " ")))
		if err != nil {
			return "", err
		}
		return string(v), nil
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q\n", args[0])
		return "", fmt.Errorf("unknown command")
	}
}
