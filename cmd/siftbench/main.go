// Command siftbench is the full benchmark harness: it regenerates every
// table and figure of the paper's evaluation (§6) as text tables.
//
// Usage:
//
//	siftbench -experiment fig5                 # one experiment
//	siftbench -experiment all                  # everything
//	siftbench -experiment fig5 -keys 1000000 -duration 50s -reps 5
//	siftbench -experiment capacity             # open-loop knee + $/Mops
//
// Experiments: table1, fig5, fig6, fig7, fig8, table2, fig9, fig10,
// fig11, fig12, shard, wan, capacity. Defaults are sized for a laptop;
// the flags scale any experiment up to the paper's full parameters.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"github.com/repro/sift/internal/backuppool"
	"github.com/repro/sift/internal/bench"
	"github.com/repro/sift/internal/cloudcost"
	"github.com/repro/sift/internal/metrics"
	"github.com/repro/sift/internal/workload"
)

type options struct {
	keys      int
	valueSize int
	clients   int
	duration  time.Duration
	warmup    time.Duration
	reps      int
	seed      int64
}

func main() {
	var (
		experiment = flag.String("experiment", "all", "comma-separated experiments (table1, fig5, fig6, fig7, fig8, table2, fig9, fig10, fig11, fig12, shard, wan, capacity, all)")
		keys       = flag.Int("keys", 4096, "key population (paper: 1000000)")
		valueSize  = flag.Int("value-size", 992, "value payload bytes")
		clients    = flag.Int("clients", 32, "concurrent closed-loop clients")
		duration   = flag.Duration("duration", 2*time.Second, "measured duration per run (paper: 50s)")
		warmup     = flag.Duration("warmup", 500*time.Millisecond, "warm-up before measuring (paper: 10s)")
		reps       = flag.Int("reps", 1, "repetitions per data point (paper: 5-8)")
		seed       = flag.Int64("seed", 42, "base seed")
	)
	flag.Parse()
	opts := options{
		keys: *keys, valueSize: *valueSize, clients: *clients,
		duration: *duration, warmup: *warmup, reps: *reps, seed: *seed,
	}

	all := map[string]func(options){
		"table1": table1, "fig5": fig5, "fig6": fig6, "fig7": fig7,
		"fig8": fig8, "table2": table2, "fig9": costFigure(1), "fig10": costFigure(2),
		"fig11": fig11, "fig12": fig12, "shard": shardScaling, "wan": wanDegradation,
		"capacity": capacitySweep,
	}
	order := []string{"table1", "fig5", "fig6", "fig7", "fig8", "table2", "fig9", "fig10", "fig11", "fig12", "shard", "wan", "capacity"}

	want := strings.Split(*experiment, ",")
	if *experiment == "all" {
		want = order
	}
	for _, name := range want {
		name = strings.TrimSpace(name)
		fn, ok := all[name]
		if !ok {
			log.Fatalf("siftbench: unknown experiment %q", name)
		}
		fmt.Printf("==== %s ====\n", name)
		fn(opts)
		fmt.Println()
	}
}

func newTab() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

// table1 prints the protocol characteristics comparison (paper Table 1).
func table1(options) {
	w := newTab()
	defer w.Flush()
	fmt.Fprintln(w, "Table 1: comparison of key consensus protocol characteristics")
	fmt.Fprintln(w, "type\tresource location\tprotocol\terasure coding\treplication factor")
	fmt.Fprintln(w, "Sift\tDisaggregated\t1-sided RDMA\tYes\t2Fm+1 memory, Fc+1 CPU")
	fmt.Fprintln(w, "Raft\tCoupled\tTCP\tNo\t2F+1")
	fmt.Fprintln(w, "DARE\tCoupled\t1-sided RDMA\tNo\t2F+1")
	fmt.Fprintln(w, "RS-Paxos\tCoupled\tTCP\tYes\tQR+QW-X")
	fmt.Fprintln(w, "Disk Paxos\tDisaggregated*\tUnspecified\tNo\t2F+1 disks + P + L")
}

// buildPopulated constructs and pre-populates one system.
func buildPopulated(kind bench.SystemKind, f int, o options) bench.System {
	sys, err := bench.NewSystem(bench.SystemConfig{
		Kind: kind, F: f, Keys: o.keys, ValueSize: o.valueSize, Seed: o.seed,
	})
	if err != nil {
		log.Fatalf("siftbench: %s: %v", kind, err)
	}
	if err := bench.Populate(sys, o.keys, o.valueSize); err != nil {
		log.Fatalf("siftbench: populate %s: %v", kind, err)
	}
	return sys
}

// repeated runs a config o.reps times and returns mean throughput and CI.
func repeated(o options, mk func(rep int) bench.RunResult) (mean, ci float64, last bench.RunResult) {
	samples := make([]float64, 0, o.reps)
	for rep := 0; rep < o.reps; rep++ {
		last = mk(rep)
		samples = append(samples, last.Throughput)
	}
	mean, ci = metrics.Summarize(samples)
	return mean, ci, last
}

// fig5 reproduces Figure 5: throughput per workload type per system.
func fig5(o options) {
	fmt.Println("Figure 5: throughput (ops/sec) by workload type, F=1")
	w := newTab()
	defer w.Flush()
	fmt.Fprintln(w, "system\twrite-only\tmixed\tread-heavy\tread-only")
	for _, kind := range []bench.SystemKind{bench.SystemEPaxos, bench.SystemSiftEC, bench.SystemSift, bench.SystemRaftR} {
		sys := buildPopulated(kind, 1, o)
		fmt.Fprintf(w, "%s", kind)
		for _, mix := range workload.Mixes {
			mean, ci, _ := repeated(o, func(rep int) bench.RunResult {
				return bench.Run(bench.RunConfig{
					System: sys, Mix: mix, Clients: o.clients,
					Duration: o.duration, Warmup: o.warmup,
					Keys: o.keys, ValueSize: o.valueSize, ZipfTheta: 0.99,
					Seed: o.seed + int64(rep),
				})
			})
			if ci > 0.05*mean {
				fmt.Fprintf(w, "\t%.0f ±%.0f", mean, ci)
			} else {
				fmt.Fprintf(w, "\t%.0f", mean)
			}
		}
		fmt.Fprintln(w)
		sys.Close()
	}
}

// fig6 reproduces Figure 6: latencies at low load and at high load.
func fig6(o options) {
	fmt.Println("Figure 6: latency (µs) at low load (1 client) and high load")
	w := newTab()
	defer w.Flush()
	fmt.Fprintln(w, "system\tread p50/p95 (1 client)\twrite p50/p95 (1 client)\tread p50/p95 (high load)\twrite p50/p95 (high load)")
	for _, kind := range []bench.SystemKind{bench.SystemRaftR, bench.SystemSift, bench.SystemSiftEC} {
		sys := buildPopulated(kind, 1, o)
		cells := make([]string, 0, 4)
		for _, load := range []int{1, o.clients} {
			for _, mixName := range []string{"read-only", "write-only"} {
				mix, _ := workload.MixByName(mixName)
				res := bench.Run(bench.RunConfig{
					System: sys, Mix: mix, Clients: load,
					Duration: o.duration, Warmup: o.warmup,
					Keys: o.keys, ValueSize: o.valueSize, ZipfTheta: 0.99,
					Seed: o.seed,
				})
				lat := res.ReadLat
				if mixName == "write-only" {
					lat = res.WriteLat
				}
				cells = append(cells, fmt.Sprintf("%d/%d",
					lat.Median.Microseconds(), lat.P95.Microseconds()))
			}
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\n", kind, cells[0], cells[1], cells[2], cells[3])
		sys.Close()
	}
}

// fig7 reproduces Figure 7: read-heavy throughput vs provisioned cores.
func fig7(o options) {
	fmt.Println("Figure 7: read-heavy throughput (ops/sec) vs provisioned cores")
	perOp := map[bench.SystemKind]time.Duration{
		bench.SystemRaftR:  20 * time.Microsecond,
		bench.SystemSift:   26 * time.Microsecond,
		bench.SystemSiftEC: 31 * time.Microsecond,
	}
	cores := []int{6, 7, 8, 9, 10, 11, 12}
	w := newTab()
	defer w.Flush()
	fmt.Fprint(w, "system\t")
	for _, c := range cores {
		fmt.Fprintf(w, "%d cores\t", c)
	}
	fmt.Fprintln(w)
	for _, f := range []int{1, 2} {
		for _, kind := range []bench.SystemKind{bench.SystemRaftR, bench.SystemSift, bench.SystemSiftEC} {
			sys := buildPopulated(kind, f, o)
			fmt.Fprintf(w, "%s (F=%d)\t", kind, f)
			for _, c := range cores {
				res := bench.Run(bench.RunConfig{
					System: sys, Mix: workload.ReadHeavy, Clients: o.clients,
					Duration: o.duration, Warmup: o.warmup,
					Keys: o.keys, ValueSize: o.valueSize, ZipfTheta: 0.99,
					Cores: c, PerOpCPU: perOp[kind], Seed: o.seed,
				})
				fmt.Fprintf(w, "%.0f\t", res.Throughput)
			}
			fmt.Fprintln(w)
			sys.Close()
		}
	}
}

// fig8 reproduces Figure 8 via the backup pool simulation.
func fig8(o options) {
	fmt.Println("Figure 8: added recovery time per fault (s) vs backup pool size")
	groups := []int{10, 100, 500, 1000, 2000, 3000}
	backups := []int{0, 1, 2, 4, 6, 8, 12, 16, 20}
	reps := o.reps
	if reps < 3 {
		reps = 3
	}
	sweep := backuppool.Sweep(groups, backups, reps, o.seed)
	w := tabwriter.NewWriter(os.Stdout, 4, 4, 2, ' ', tabwriter.AlignRight)
	defer w.Flush()
	fmt.Fprint(w, "backups\t")
	for _, g := range groups {
		fmt.Fprintf(w, "%d groups\t", g)
	}
	fmt.Fprintln(w)
	for bi, b := range backups {
		fmt.Fprintf(w, "%d\t", b)
		for _, g := range groups {
			fmt.Fprintf(w, "%.3f\t", sweep[g][bi].Seconds())
		}
		fmt.Fprintln(w)
	}
}

// table2 prints the Table 2 machine configurations.
func table2(options) {
	w := newTab()
	defer w.Flush()
	fmt.Fprintln(w, "Table 2: machine configurations normalized for performance")
	fmt.Fprintln(w, "system\tF\tCPU node\tmemory node")
	for _, row := range cloudcost.Table2() {
		mem := "-"
		if row.MemNode.Cores > 0 {
			mem = fmt.Sprintf("%d cores / %d GB", row.MemNode.Cores, row.MemNode.MemGB)
		}
		fmt.Fprintf(w, "%s\t%d\t%d cores / %d GB\t%s\n",
			row.System, row.F, row.CPU.Cores, row.CPU.MemGB, mem)
	}
}

// costFigure renders Figure 9 (f=1) or Figure 10 (f=2).
func costFigure(f int) func(options) {
	return func(options) {
		figure := 9
		if f == 2 {
			figure = 10
		}
		fmt.Printf("Figure %d: deployment cost relative to Raft-R, F=%d (100 groups, pool of 2)\n", figure, f)
		rows, err := cloudcost.FigureSeries(f)
		if err != nil {
			log.Fatalf("siftbench: %v", err)
		}
		w := newTab()
		defer w.Flush()
		fmt.Fprintln(w, "provider\tconfiguration\trelative cost")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%s\t%+.1f%%\n", r.Provider, r.Label, r.Relative)
		}
	}
}

// fig11 reproduces Figure 11: throughput across a memory node failure.
func fig11(o options) {
	fmt.Println("Figure 11: read-heavy throughput during a memory node failure (100ms intervals)")
	tl, err := bench.MemoryNodeFailureTimeline(bench.FailureConfig{
		Keys: o.keys, ValueSize: o.valueSize, Clients: o.clients,
		Steady: o.duration / 2, Outage: o.duration / 2, Observe: o.duration,
		Seed: o.seed,
	})
	if err != nil {
		log.Fatalf("siftbench: fig11: %v", err)
	}
	printTimeline(tl)
}

// fig12 reproduces Figure 12: throughput across a coordinator failure.
func fig12(o options) {
	fmt.Println("Figure 12: read-heavy throughput during a coordinator failure (100ms intervals)")
	tl, err := bench.CoordinatorFailureTimeline(bench.FailureConfig{
		Keys: o.keys, ValueSize: o.valueSize, Clients: o.clients,
		Steady: o.duration / 2, Outage: o.duration / 2, Observe: o.duration,
		Seed: o.seed,
	})
	if err != nil {
		log.Fatalf("siftbench: fig12: %v", err)
	}
	printTimeline(tl)
}

// shardScaling measures aggregate put throughput behind the shard router
// (DESIGN.md §15) at 1, 2, and 4 consensus groups on 2ms links. The
// closed-loop client population is held constant across group counts so
// every configuration faces the same offered load (a group-proportional
// population under-loads the 1-group baseline and manufactures
// super-linear speedups); for a load-independent comparison use
// `-experiment capacity`-style knees, which is what BENCH_<n>.json records.
func shardScaling(o options) {
	fmt.Println("Sharding: aggregate put throughput (ops/sec) vs consensus groups (2ms links, fixed total clients)")
	w := newTab()
	defer w.Flush()
	fmt.Fprintln(w, "groups\tclients\tops/sec\tspeedup")
	var base float64
	for _, groups := range []int{1, 2, 4} {
		const clients = 16
		tput, err := bench.ShardPutThroughput(bench.ShardScalingConfig{
			Groups:   groups,
			Clients:  clients,
			Warmup:   o.warmup,
			Duration: o.duration,
			Seed:     o.seed,
		})
		if err != nil {
			log.Fatalf("siftbench: shard: %v", err)
		}
		if groups == 1 {
			base = tput
		}
		speedup := "-"
		if base > 0 {
			speedup = fmt.Sprintf("%.2fx", tput/base)
		}
		fmt.Fprintf(w, "%d\t%d\t%.0f\t%s\n", groups, clients, tput, speedup)
	}
}

// wanDegradation measures acknowledged put throughput and put p99 across a
// simulated 40ms-RTT wide-area deployment (one memory node and the client
// hop across the WAN, loss-adaptive FEC transport; DESIGN.md §16) at 0%,
// 5%, and 15% sustained Gilbert–Elliott loss.
func wanDegradation(o options) {
	fmt.Println("WAN: put throughput and p99 vs sustained loss (40ms RTT, adaptive FEC)")
	w := newTab()
	defer w.Flush()
	fmt.Fprintln(w, "loss\tops/sec\tput p99 (ms)\tretention")
	var base float64
	for _, loss := range []float64{0, 0.05, 0.15} {
		tput, p99, err := bench.WANPutThroughput(bench.WANBenchConfig{
			LossRate: loss, Warmup: o.warmup, Duration: o.duration, Seed: o.seed,
		})
		if err != nil {
			log.Fatalf("siftbench: wan: %v", err)
		}
		if loss == 0 {
			base = tput
		}
		retention := "-"
		if base > 0 {
			retention = fmt.Sprintf("%.0f%%", 100*tput/base)
		}
		fmt.Fprintf(w, "%.0f%%\t%.1f\t%.1f\t%s\n", 100*loss, tput, p99, retention)
	}
}

// capacitySweep walks open-loop Poisson arrival rates against the plain
// F=1 deployment to the throughput knee (DESIGN.md §17): the highest
// offered rate served without queue growth. Latency is measured from
// scheduled arrival time, so a saturated or stalled server shows up as
// queue latency instead of a quietly reduced offered load (the
// coordinated-omission failure of closed-loop probes). The knee then
// prices the deployment in the paper's headline metric, $/million ops.
func capacitySweep(o options) {
	fmt.Println("Capacity: open-loop put arrival-rate sweep to the knee (plain F=1 deployment)")
	res, err := bench.PlainPutCapacity(bench.DeploymentCapacityConfig{
		Sweep: bench.CapacityConfig{
			StepDuration: o.duration / 2,
			StepWarmup:   o.warmup,
		},
		Keys:      o.keys,
		ValueSize: o.valueSize,
		Seed:      o.seed,
	})
	if err != nil {
		log.Fatalf("siftbench: capacity: %v", err)
	}
	w := newTab()
	fmt.Fprintln(w, "offered/s\tachieved/s\tp50\tp99\tp999\tdropped\tbacklog\t")
	for _, p := range res.Points {
		mark := ""
		if p.Offered == res.Knee.Offered {
			mark = "← knee"
		}
		fmt.Fprintf(w, "%.0f\t%.0f\t%v\t%v\t%v\t%d\t%d\t%s\n",
			p.Offered, p.Achieved, p.P50, p.P99, p.P999, p.Dropped, p.Backlog, mark)
	}
	w.Flush()
	if res.Saturated {
		fmt.Println("note: even the lowest swept rate saturated; knee is a ceiling estimate")
	}
	fmt.Printf("knee: %.0f ops/sec (p50=%v p99=%v p999=%v at the knee)\n",
		res.KneeOpsPerSec, res.Knee.P50, res.Knee.P99, res.Knee.P999)

	w = newTab()
	defer w.Flush()
	fmt.Fprintln(w, "provider\tdeployment $/hr\t$/million ops at knee")
	for _, p := range []cloudcost.Provider{cloudcost.AWS, cloudcost.GCP} {
		dep := cloudcost.Deployment{System: cloudcost.Sift, F: 1}
		hourly, err := cloudcost.GroupCost(dep, p)
		if err != nil {
			log.Fatalf("siftbench: capacity: %v", err)
		}
		fmt.Fprintf(w, "%s\t%.3f\t%.4f\n", p, hourly, cloudcost.CostPerMillionOps(hourly, res.KneeOpsPerSec))
	}
}

func printTimeline(tl bench.FailureTimeline) {
	w := newTab()
	fmt.Fprintln(w, "t (s)\tops/sec")
	for _, p := range tl.Series {
		fmt.Fprintf(w, "%.1f\t%.0f\n", p.T.Seconds(), p.Ops)
	}
	w.Flush()
	fmt.Println("events:")
	for name, at := range tl.Events {
		fmt.Printf("  %6.2fs  %s\n", at.Seconds(), name)
	}
}
