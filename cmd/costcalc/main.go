// Command costcalc regenerates the paper's cost analysis: Table 2's
// performance-normalized machine configurations and Figures 9/10's
// deployment costs relative to Raft-R.
//
// Usage:
//
//	costcalc -table2          # print Table 2 with per-machine $/hr
//	costcalc -f 1             # Figure 9 (relative costs at F=1)
//	costcalc -f 2             # Figure 10 (relative costs at F=2)
//	costcalc -groups 500 -pool 4 -f 2   # custom amortization
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"github.com/repro/sift/internal/cloudcost"
)

func main() {
	var (
		table2 = flag.Bool("table2", false, "print Table 2 machine configurations")
		f      = flag.Int("f", 1, "fault tolerance level (1 → Figure 9, 2 → Figure 10)")
		groups = flag.Int("groups", 100, "group count for shared-backup amortization")
		pool   = flag.Int("pool", 2, "shared backup pool size")
	)
	flag.Parse()

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	defer w.Flush()

	if *table2 {
		fmt.Fprintln(w, "Table 2: machine configurations normalized for performance")
		fmt.Fprintln(w, "system\tF\tCPU-node\tAWS $/hr\tGCP $/hr\tmem-node\tAWS $/hr\tGCP $/hr")
		for _, row := range cloudcost.Table2() {
			memDesc, memAWS, memGCP := "-", "-", "-"
			if row.MemNode.Cores > 0 {
				memDesc = fmt.Sprintf("%dc/%dGB", row.MemNode.Cores, row.MemNode.MemGB)
				memAWS = fmt.Sprintf("%.4f", row.MemNode.Cost(cloudcost.AWS))
				memGCP = fmt.Sprintf("%.4f", row.MemNode.Cost(cloudcost.GCP))
			}
			fmt.Fprintf(w, "%s\t%d\t%dc/%dGB\t%.4f\t%.4f\t%s\t%s\t%s\n",
				row.System, row.F,
				row.CPU.Cores, row.CPU.MemGB,
				row.CPU.Cost(cloudcost.AWS), row.CPU.Cost(cloudcost.GCP),
				memDesc, memAWS, memGCP)
		}
		return
	}

	figure := 9
	if *f == 2 {
		figure = 10
	}
	fmt.Fprintf(w, "Figure %d: deployment cost relative to Raft-R (F=%d, %d groups, pool of %d)\n",
		figure, *f, *groups, *pool)
	fmt.Fprintln(w, "provider\tconfiguration\trelative cost\tgroup $/hr")
	type variant struct {
		label  string
		system cloudcost.System
		shared bool
	}
	variants := []variant{
		{"Sift", cloudcost.Sift, false},
		{"Sift + Shared Backups", cloudcost.Sift, true},
		{"Sift EC", cloudcost.SiftEC, false},
		{"Sift EC + Shared Backups", cloudcost.SiftEC, true},
	}
	for _, p := range []cloudcost.Provider{cloudcost.AWS, cloudcost.GCP} {
		raft, err := cloudcost.GroupCost(cloudcost.Deployment{System: cloudcost.RaftR, F: *f}, p)
		if err != nil {
			log.Fatalf("costcalc: %v", err)
		}
		fmt.Fprintf(w, "%s\tRaft-R (baseline)\t%+.1f%%\t$%.4f\n", p, 0.0, raft)
		for _, v := range variants {
			d := cloudcost.Deployment{
				System: v.system, F: *f,
				SharedBackups: v.shared, Groups: *groups, BackupPool: *pool,
			}
			rel, err := cloudcost.RelativeCost(d, p)
			if err != nil {
				log.Fatalf("costcalc: %v", err)
			}
			abs, _ := cloudcost.GroupCost(d, p)
			fmt.Fprintf(w, "%s\t%s\t%+.1f%%\t$%.4f\n", p, v.label, rel, abs)
		}
	}
}
