package sift

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/repro/sift/internal/linearize"
	"github.com/repro/sift/internal/memnode"
	"github.com/repro/sift/internal/workload"
)

// dumpEventsOnFailure prints the cluster's control-plane event ring into
// the test log when the test fails, so a broken failover leaves its
// election/fencing/suspicion trace next to the assertion that caught it.
func dumpEventsOnFailure(t *testing.T, cl *Cluster) {
	t.Helper()
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		var b strings.Builder
		cl.Events().Dump(&b)
		t.Logf("control-plane events at failure:\n%s", b.String())
	})
}

// TestChaosCommittedWritesSurvive runs a write/read workload while
// repeatedly crashing coordinators and memory nodes (within the F budget),
// and verifies at the end that every acknowledged write is readable with
// its latest acknowledged value — the core safety property: a committed
// write is never lost, whatever the failure schedule.
func TestChaosCommittedWritesSurvive(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run in -short mode")
	}
	cfg := smallConfig()
	cfg.Keys = 256
	cfg.NodeRecoveryInterval = 10 * time.Millisecond
	cl := newTestCluster(t, cfg)
	dumpEventsOnFailure(t, cl)

	const (
		workers = 4
		rounds  = 6
	)
	var (
		mu        sync.Mutex
		acked     = map[string]string{} // latest acknowledged value per key
		stop      = make(chan struct{})
		wg        sync.WaitGroup
		nextCPUID uint16 = 100
	)

	// Writers: every acknowledged Put is recorded under the lock *around*
	// the call so "latest acknowledged" is well defined.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := cl.Client()
			c.RetryBudget = 20 * time.Second
			rng := rand.New(rand.NewSource(int64(w)))
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("w%d-k%d", w, rng.Intn(8))
				val := fmt.Sprintf("w%d-v%d", w, i)
				i++
				mu.Lock()
				err := c.Put([]byte(key), []byte(val))
				if err == nil {
					acked[key] = val
				}
				mu.Unlock()
				if err != nil && !errors.Is(err, ErrNoCoordinator) {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}

	// Chaos schedule: alternate coordinator kills and memory node
	// kill/restart cycles, always within the F=1 budget.
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < rounds; round++ {
		time.Sleep(60 * time.Millisecond)
		switch round % 3 {
		case 0:
			if id := cl.KillCoordinator(); id != 0 {
				// Keep the CPU-node population at 2 for the next rounds.
				nextCPUID++
				cl.StartCPUNode(nextCPUID)
			}
		case 1:
			victim := cl.MemoryNodes()[rng.Intn(3)]
			cl.KillMemoryNode(victim)
			time.Sleep(40 * time.Millisecond)
			cl.RestartMemoryNode(victim)
		case 2:
			if err := cl.AwaitMemoryNodeRecovery(1, 10*time.Second); err != nil {
				t.Logf("recovery pending: %v", err)
			}
		}
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Let the dust settle: all memory nodes recovered, coordinator stable.
	if err := cl.WaitForCoordinator(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Every acknowledged write must be readable with its latest value.
	c := cl.Client()
	c.RetryBudget = 20 * time.Second
	mu.Lock()
	defer mu.Unlock()
	for key, want := range acked {
		got, err := c.Get([]byte(key))
		if err != nil {
			t.Fatalf("get %s: %v", key, err)
		}
		if string(got) != want {
			t.Fatalf("key %s: read %q, last acknowledged %q", key, got, want)
		}
	}
	t.Logf("chaos survived: %d keys verified after %d failure rounds", len(acked), rounds)
}

// TestChaosErasureCoded repeats a shorter chaos schedule against an
// erasure-coded group: chunk loss, reconstruction, and coordinator
// failover interacting.
func TestChaosErasureCoded(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run in -short mode")
	}
	cfg := smallConfig()
	cfg.Keys = 256
	cfg.ErasureCoding = true
	cfg.NodeRecoveryInterval = 10 * time.Millisecond
	cl := newTestCluster(t, cfg)
	dumpEventsOnFailure(t, cl)
	c := cl.Client()
	c.RetryBudget = 20 * time.Second

	acked := map[string]string{}
	put := func(k, v string) {
		if err := c.Put([]byte(k), []byte(v)); err != nil {
			t.Fatalf("put %s: %v", k, err)
		}
		acked[k] = v
	}

	for i := 0; i < 40; i++ {
		put(fmt.Sprintf("k%d", i%16), fmt.Sprintf("v%d", i))
	}
	victim := cl.MemoryNodes()[0]
	cl.KillMemoryNode(victim)
	for i := 40; i < 80; i++ {
		put(fmt.Sprintf("k%d", i%16), fmt.Sprintf("v%d", i))
	}
	cl.KillCoordinator()
	for i := 80; i < 120; i++ {
		put(fmt.Sprintf("k%d", i%16), fmt.Sprintf("v%d", i))
	}
	cl.RestartMemoryNode(victim)
	if err := cl.AwaitMemoryNodeRecovery(1, 15*time.Second); err != nil {
		t.Fatal(err)
	}
	// Another chunk owner dies; reads now lean on the rebuilt node.
	cl.KillMemoryNode(cl.MemoryNodes()[1])

	for k, want := range acked {
		got, err := c.Get([]byte(k))
		if err != nil {
			t.Fatalf("get %s: %v", k, err)
		}
		if string(got) != want {
			t.Fatalf("key %s: read %q, want %q", k, got, want)
		}
	}
}

// grayConfig is smallConfig plus the fault-injection layer and aggressive
// gray-failure detection knobs shared by the gray chaos tests.
func grayConfig() Config {
	cfg := smallConfig()
	cfg.FaultInjection = true
	cfg.OpDeadline = 80 * time.Millisecond
	cfg.SuspectAfter = 2
	cfg.NodeRecoveryInterval = 25 * time.Millisecond
	return cfg
}

// healthState reports the coordinator's view of one memory node, or "" when
// no coordinator is serving.
func healthState(cl *Cluster, node string) string {
	for _, h := range cl.Health() {
		if h.Node == node {
			return h.State
		}
	}
	return ""
}

// TestChaosHungMemoryNode is the gray-failure acceptance test: one memory
// node stays connected but stops responding (the paper's fail-stop model
// never covers this — the connection is healthy, the host is not). Client
// Puts must keep committing, and once the coordinator has marked the node
// suspect each Put must complete within 2× the op deadline because quorum
// writes no longer wait on it. When the node resumes, the recovery manager
// repairs it and every acknowledged write is still readable.
func TestChaosHungMemoryNode(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run in -short mode")
	}
	cfg := grayConfig()
	cl := newTestCluster(t, cfg)
	dumpEventsOnFailure(t, cl)
	c := cl.Client()
	c.RetryBudget = 20 * time.Second

	acked := map[string]string{}
	put := func(k, v string) {
		t.Helper()
		if err := c.Put([]byte(k), []byte(v)); err != nil {
			t.Fatalf("put %s: %v", k, err)
		}
		acked[k] = v
	}

	for i := 0; i < 24; i++ {
		put(fmt.Sprintf("k%d", i%12), fmt.Sprintf("v%d", i))
	}
	baseline := runtime.NumGoroutine()

	victim := cl.MemoryNodes()[1]
	cl.Faults().Node(victim).Hang()

	// Drive writes until the coordinator stops trusting the victim. Puts
	// commit throughout (quorum = the two healthy nodes); the victim's ops
	// expire with rdma.ErrDeadline in the background and build the
	// consecutive-timeout streak.
	suspectBy := time.Now().Add(15 * time.Second)
	for healthState(cl, victim) == "live" {
		if time.Now().After(suspectBy) {
			t.Fatalf("victim never left live state; health=%+v", cl.Health())
		}
		put(fmt.Sprintf("hung-k%d", len(acked)%12), fmt.Sprintf("hv%d", len(acked)))
		time.Sleep(5 * time.Millisecond)
	}
	t.Logf("victim %s marked %q after deadline expiries", victim, healthState(cl, victim))

	// With the victim excluded from the wait set, writes must be bounded by
	// the healthy quorum, not the hung node: well under 2× the op deadline.
	bound := 2 * cfg.OpDeadline
	for i := 0; i < 20; i++ {
		start := time.Now()
		put(fmt.Sprintf("bounded-k%d", i), fmt.Sprintf("bv%d", i))
		if elapsed := time.Since(start); elapsed >= bound {
			t.Fatalf("put %d took %v with suspect node (bound %v)", i, elapsed, bound)
		}
	}
	if s := cl.Stats(); s.Memory.NodeTimeouts == 0 {
		t.Fatalf("expected deadline expiries in stats, got %+v", s.Memory)
	}

	// The node comes back: parked ops drain, the next probe succeeds, and
	// the recovery manager rebuilds it from a healthy replica.
	cl.Faults().Node(victim).Resume()
	if err := cl.AwaitMemoryNodeRecovery(1, 20*time.Second); err != nil {
		t.Fatalf("victim not repaired after resume: %v (health=%+v)", err, cl.Health())
	}

	// No goroutine leak: ops blocked on the hung node (heartbeat CAS,
	// parked writes, probe reads) must all have completed or been fenced.
	// Allow slack for transient recovery work and poll until stable.
	deadline := time.Now().Add(10 * time.Second)
	slack := 24
	for runtime.NumGoroutine() > baseline+slack {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked across hang/resume: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}

	for k, want := range acked {
		got, err := c.Get([]byte(k))
		if err != nil {
			t.Fatalf("get %s: %v", k, err)
		}
		if string(got) != want {
			t.Fatalf("key %s: read %q, want %q", k, got, want)
		}
	}
	t.Logf("hung-node chaos survived: %d keys verified, stats %+v", len(acked), cl.Stats().Memory)
}

// TestChaosSlowThenRecover covers the straggler flavour of gray failure: the
// node answers every operation, just slower than the op deadline. The
// coordinator must suspect it from deadline expiries alone (the connection
// never errors), keep committing on the healthy quorum, and repair it once
// its latency returns to normal.
func TestChaosSlowThenRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run in -short mode")
	}
	cfg := grayConfig()
	cfg.OpDeadline = 40 * time.Millisecond
	cl := newTestCluster(t, cfg)
	dumpEventsOnFailure(t, cl)
	c := cl.Client()
	c.RetryBudget = 20 * time.Second

	acked := map[string]string{}
	put := func(k, v string) {
		t.Helper()
		if err := c.Put([]byte(k), []byte(v)); err != nil {
			t.Fatalf("put %s: %v", k, err)
		}
		acked[k] = v
	}

	for i := 0; i < 16; i++ {
		put(fmt.Sprintf("k%d", i%8), fmt.Sprintf("v%d", i))
	}

	// Every op to the victim now takes 3× the deadline. The transport fails
	// the op at the deadline and executes it late; commits ride the quorum.
	victim := cl.MemoryNodes()[2]
	cl.Faults().Node(victim).SetDelay(3*cfg.OpDeadline, 0, 1.0)

	suspectBy := time.Now().Add(15 * time.Second)
	for healthState(cl, victim) == "live" {
		if time.Now().After(suspectBy) {
			t.Fatalf("slow victim never suspected; health=%+v", cl.Health())
		}
		put(fmt.Sprintf("slow-k%d", len(acked)%8), fmt.Sprintf("sv%d", len(acked)))
		time.Sleep(5 * time.Millisecond)
	}
	if s := cl.Stats(); s.Memory.NodeSuspected == 0 && s.Memory.NodeFailures == 0 {
		t.Fatalf("no suspicion or failure recorded for slow node: %+v", s.Memory)
	}

	// Latency recovers; the suspect probe sees a responsive node and routes
	// it through full recovery back to live.
	cl.Faults().Node(victim).SetDelay(0, 0, 0)
	if err := cl.AwaitMemoryNodeRecovery(1, 20*time.Second); err != nil {
		t.Fatalf("slow node not repaired after recovering: %v (health=%+v)", err, cl.Health())
	}

	for k, want := range acked {
		got, err := c.Get([]byte(k))
		if err != nil {
			t.Fatalf("get %s: %v", k, err)
		}
		if string(got) != want {
			t.Fatalf("key %s: read %q, want %q", k, got, want)
		}
	}
}

// TestChaosNetworkFlap bounces one memory node's network repeatedly and
// checks the redial path: every flap fails in-flight ops, the circuit
// breaker paces reconnection attempts while the node is down, and each
// restart is healed by a redial plus background recovery. Committed data
// survives every cycle.
func TestChaosNetworkFlap(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run in -short mode")
	}
	cfg := smallConfig()
	cfg.NodeRecoveryInterval = 10 * time.Millisecond
	cl := newTestCluster(t, cfg)
	dumpEventsOnFailure(t, cl)
	c := cl.Client()
	c.RetryBudget = 20 * time.Second

	acked := map[string]string{}
	put := func(k, v string) {
		t.Helper()
		if err := c.Put([]byte(k), []byte(v)); err != nil {
			t.Fatalf("put %s: %v", k, err)
		}
		acked[k] = v
	}

	victim := cl.MemoryNodes()[0]
	seq := 0
	for flap := 0; flap < 3; flap++ {
		for i := 0; i < 8; i++ {
			put(fmt.Sprintf("k%d", seq%16), fmt.Sprintf("v%d", seq))
			seq++
		}
		cl.KillMemoryNode(victim)
		// Writes keep committing while the node is down; redial attempts
		// fail into the circuit breaker in the background.
		for i := 0; i < 8; i++ {
			put(fmt.Sprintf("k%d", seq%16), fmt.Sprintf("v%d", seq))
			seq++
			time.Sleep(5 * time.Millisecond)
		}
		cl.RestartMemoryNode(victim)
		if err := cl.AwaitMemoryNodeRecovery(uint64(flap+1), 20*time.Second); err != nil {
			t.Fatalf("flap %d: %v (health=%+v)", flap, err, cl.Health())
		}
	}

	s := cl.Stats().Memory
	if s.Redials == 0 {
		t.Fatalf("no successful redials recorded across flaps: %+v", s)
	}
	if s.RedialErrors == 0 {
		t.Fatalf("no failed redial attempts recorded while node was down: %+v", s)
	}
	for k, want := range acked {
		got, err := c.Get([]byte(k))
		if err != nil {
			t.Fatalf("get %s: %v", k, err)
		}
		if string(got) != want {
			t.Fatalf("key %s: read %q, want %q", k, got, want)
		}
	}
	t.Logf("network flap survived: %d keys, redials=%d redialErrors=%d recovered=%d",
		len(acked), s.Redials, s.RedialErrors, s.NodeRecovered)
}

// --- Chaos linearizability suite ---------------------------------------
//
// The tests above assert liveness and data presence; the TestChaosLinearize*
// scenarios assert the client-visible ordering itself. A fleet of
// instrumented clients records every op (including ambiguous outcomes) into
// one shared history while faults fire, and internal/linearize then decides
// whether the cluster's responses admit any legal sequential execution —
// the paper's §5 safety claim, checked mechanically.

// runLinearizeClients starts n instrumented clients running a mixed
// unique-value workload over a small keyspace against cl, invokes disturb
// while they run, then stops them and verifies the recorded history
// linearizes at the default checker timeout.
func runLinearizeClients(t *testing.T, cl *Cluster, n int, disturb func()) {
	t.Helper()
	rec := linearize.NewRecorder()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := cl.Client()
			c.ClientID = id
			c.History = rec
			c.RetryBudget = 20 * time.Second
			gen := workload.NewGenerator(workload.Config{
				Mix: workload.Mixed, Keys: 8, ValueSize: 16,
				Seed: int64(1000 + id), UniqueValues: true,
				ClientID: id, DeleteRatio: 0.1,
			})
			for {
				select {
				case <-stop:
					return
				default:
				}
				op := gen.Next()
				var err error
				switch {
				case op.Read:
					_, err = c.Get(op.Key)
				case op.Delete:
					err = c.Delete(op.Key)
				default:
					err = c.Put(op.Key, op.Value)
				}
				// ErrNoCoordinator also covers ErrAmbiguous (it wraps it);
				// both are legal under faults and modeled by the recorder.
				if err != nil && !errors.Is(err, ErrNotFound) && !errors.Is(err, ErrNoCoordinator) {
					t.Errorf("client %d: unexpected error %v", id, err)
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(i)
	}

	disturb()
	close(stop)
	wg.Wait()

	hist := rec.History()
	open := 0
	for _, o := range hist {
		if o.Ambiguous() {
			open++
		}
	}
	rep := linearize.Check(hist, linearize.DefaultTimeout)
	if rep.Result != linearize.Ok {
		// Dump the offending partition in invocation order for debugging.
		var bad []linearize.Op
		for _, o := range hist {
			if o.Key == rep.Key {
				bad = append(bad, o)
			}
		}
		sort.Slice(bad, func(i, j int) bool { return bad[i].Invoke < bad[j].Invoke })
		for _, o := range bad {
			t.Logf("  c%-2d %-6s in=%q out=%q notFound=%v [%d, %d]",
				o.ClientID, o.Kind, o.In, o.Out, o.NotFound, o.Invoke, o.Return)
		}
		for _, o := range rep.Frontier {
			t.Logf("  frontier: c%-2d %-6s in=%q out=%q notFound=%v [%d, %d]",
				o.ClientID, o.Kind, o.In, o.Out, o.NotFound, o.Invoke, o.Return)
		}
		t.Fatalf("history of %d ops (%d open) over %d keys: %v on key %q",
			rep.Ops, open, rep.Keys, rep.Result, rep.Key)
	}
	t.Logf("linearized %d ops (%d open) over %d keys in %v", rep.Ops, open, rep.Keys, rep.Elapsed)
}

// TestChaosLinearizeHungNodeElection: a memory node hangs gray (connection
// up, host silent) and the coordinator is killed mid-traffic, forcing an
// election that must fence the old regime — any acknowledged write that the
// fencing loses would show up as a non-linearizable read.
func TestChaosLinearizeHungNodeElection(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run in -short mode")
	}
	cfg := grayConfig()
	cl := newTestCluster(t, cfg)
	dumpEventsOnFailure(t, cl)
	if err := cl.WaitForCoordinator(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	victim := cl.MemoryNodes()[1]
	runLinearizeClients(t, cl, 10, func() {
		time.Sleep(150 * time.Millisecond)
		cl.Faults().Node(victim).Hang()
		time.Sleep(250 * time.Millisecond)
		if _, err := cl.ForceFailover(50, 10*time.Second); err != nil {
			t.Error(err)
		}
		time.Sleep(250 * time.Millisecond)
		cl.Faults().Node(victim).Resume()
		time.Sleep(200 * time.Millisecond)
	})
}

// TestChaosLinearizeDropDelay: one memory node drops 20% of ops and delays
// another 30% past the op deadline — the quorum path must keep acks honest
// while per-node retries and suspicion churn underneath.
func TestChaosLinearizeDropDelay(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run in -short mode")
	}
	cfg := grayConfig()
	cl := newTestCluster(t, cfg)
	dumpEventsOnFailure(t, cl)
	if err := cl.WaitForCoordinator(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	lossy := cl.Faults().Node(cl.MemoryNodes()[2])
	runLinearizeClients(t, cl, 12, func() {
		time.Sleep(100 * time.Millisecond)
		lossy.SetDrop(0.2)
		lossy.SetDelay(2*cfg.OpDeadline, cfg.OpDeadline, 0.3)
		time.Sleep(900 * time.Millisecond)
		lossy.SetDrop(0)
		lossy.SetDelay(0, 0, 0)
		time.Sleep(150 * time.Millisecond)
	})
}

// TestChaosLinearizeNetworkFlap: a memory node's network flaps twice; the
// circuit-breaker redial plus background recovery must reintegrate it
// without resurrecting stale state into the read path.
func TestChaosLinearizeNetworkFlap(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run in -short mode")
	}
	cfg := smallConfig()
	cfg.NodeRecoveryInterval = 10 * time.Millisecond
	cl := newTestCluster(t, cfg)
	dumpEventsOnFailure(t, cl)
	if err := cl.WaitForCoordinator(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	victim := cl.MemoryNodes()[0]
	runLinearizeClients(t, cl, 8, func() {
		for flap := 0; flap < 2; flap++ {
			time.Sleep(150 * time.Millisecond)
			cl.KillMemoryNode(victim)
			time.Sleep(150 * time.Millisecond)
			cl.RestartMemoryNode(victim)
			if err := cl.AwaitMemoryNodeRecovery(uint64(flap+1), 20*time.Second); err != nil {
				t.Errorf("flap %d: %v (health=%+v)", flap, err, cl.Health())
				return
			}
		}
		time.Sleep(150 * time.Millisecond)
	})
}

// TestChaosCorruption is the data-integrity acceptance test: one memory node
// (a minority) silently corrupts 2% of its replicated-region traffic — read
// responses and stored write payloads both — while instrumented clients run.
// Clients must never observe a wrong byte (the verified read path treats a
// CRC-failing replica like a dead one and reconstructs), the recorded history
// must linearize, and once the fault clears the scrubber must heal the node
// back to byte-identity with its peers.
func TestChaosCorruption(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run in -short mode")
	}
	cfg := grayConfig()
	cl := newTestCluster(t, cfg)
	dumpEventsOnFailure(t, cl)
	if err := cl.WaitForCoordinator(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	victim := cl.MemoryNodes()[1]
	nf := cl.Faults().Node(victim)
	// Scope the fault to the replicated data region: the admin region carries
	// election words, and a flipped heartbeat is a different experiment.
	nf.SetCorruptRegions(memnode.ReplRegionID)

	runLinearizeClients(t, cl, 10, func() {
		time.Sleep(100 * time.Millisecond)
		nf.SetCorrupt(0.02)
		time.Sleep(1200 * time.Millisecond)
		nf.SetCorrupt(0)
		time.Sleep(200 * time.Millisecond)
	})
	if st := nf.Stats(); st.Corrupts == 0 {
		t.Fatal("fault layer never corrupted an op; the schedule tested nothing")
	} else {
		t.Logf("injected %d corruptions on %s", st.Corrupts, victim)
	}

	// Plant one more silent flip in the victim's main memory directly —
	// modelled bit rot the transport never saw — so the healing assertion
	// below does not depend on which injected corruptions happened to land
	// in stored state versus read responses.
	layout := cl.mcfg.Layout()
	if err := cl.network.Node(victim).Region(memnode.ReplRegionID).Corrupt(layout.MainBase()+137, 0x40); err != nil {
		t.Fatal(err)
	}

	// The corruption-count state machine may have suspected the victim; wait
	// until the recovery manager has walked every node back to live.
	deadline := time.Now().Add(30 * time.Second)
	for {
		live := 0
		for _, h := range cl.Health() {
			if h.State == "live" {
				live++
			}
		}
		if live == len(cl.MemoryNodes()) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("nodes never all returned to live: %+v", cl.Health())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Scrub until a full sweep finds nothing and every node's replicated
	// region (direct zone + main memory + checksum strip; the WAL area is
	// pooled/reconciled, not scrubbed) is byte-identical.
	identical := func() bool {
		var first []byte
		for _, name := range cl.MemoryNodes() {
			snap := cl.network.Node(name).Region(memnode.ReplRegionID).Snapshot()[layout.DirectBase():]
			if first == nil {
				first = snap
			} else if !bytes.Equal(first, snap) {
				return false
			}
		}
		return true
	}
	for {
		rep, err := cl.ScrubNow()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Corrupt == 0 && rep.Unrepaired == 0 && identical() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never healed to byte-identity; last report %+v", rep)
		}
		time.Sleep(20 * time.Millisecond)
	}
	s := cl.Stats().Memory
	if s.CorruptionsDetected == 0 || s.BlocksRepaired == 0 {
		t.Fatalf("corruptions=%d repaired=%d, want both > 0", s.CorruptionsDetected, s.BlocksRepaired)
	}
	t.Logf("healed: detected=%d repaired=%d scrubbed=%d passes=%d",
		s.CorruptionsDetected, s.BlocksRepaired, s.ScrubbedBlocks, s.ScrubPasses)
}
