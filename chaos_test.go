package sift

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestChaosCommittedWritesSurvive runs a write/read workload while
// repeatedly crashing coordinators and memory nodes (within the F budget),
// and verifies at the end that every acknowledged write is readable with
// its latest acknowledged value — the core safety property: a committed
// write is never lost, whatever the failure schedule.
func TestChaosCommittedWritesSurvive(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run in -short mode")
	}
	cfg := smallConfig()
	cfg.Keys = 256
	cfg.NodeRecoveryInterval = 10 * time.Millisecond
	cl := newTestCluster(t, cfg)

	const (
		workers = 4
		rounds  = 6
	)
	var (
		mu        sync.Mutex
		acked     = map[string]string{} // latest acknowledged value per key
		stop      = make(chan struct{})
		wg        sync.WaitGroup
		nextCPUID uint16 = 100
	)

	// Writers: every acknowledged Put is recorded under the lock *around*
	// the call so "latest acknowledged" is well defined.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := cl.Client()
			c.RetryBudget = 20 * time.Second
			rng := rand.New(rand.NewSource(int64(w)))
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("w%d-k%d", w, rng.Intn(8))
				val := fmt.Sprintf("w%d-v%d", w, i)
				i++
				mu.Lock()
				err := c.Put([]byte(key), []byte(val))
				if err == nil {
					acked[key] = val
				}
				mu.Unlock()
				if err != nil && !errors.Is(err, ErrNoCoordinator) {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}

	// Chaos schedule: alternate coordinator kills and memory node
	// kill/restart cycles, always within the F=1 budget.
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < rounds; round++ {
		time.Sleep(60 * time.Millisecond)
		switch round % 3 {
		case 0:
			if id := cl.KillCoordinator(); id != 0 {
				// Keep the CPU-node population at 2 for the next rounds.
				nextCPUID++
				cl.StartCPUNode(nextCPUID)
			}
		case 1:
			victim := cl.MemoryNodes()[rng.Intn(3)]
			cl.KillMemoryNode(victim)
			time.Sleep(40 * time.Millisecond)
			cl.RestartMemoryNode(victim)
		case 2:
			if err := cl.AwaitMemoryNodeRecovery(1, 10*time.Second); err != nil {
				t.Logf("recovery pending: %v", err)
			}
		}
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Let the dust settle: all memory nodes recovered, coordinator stable.
	if err := cl.WaitForCoordinator(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Every acknowledged write must be readable with its latest value.
	c := cl.Client()
	c.RetryBudget = 20 * time.Second
	mu.Lock()
	defer mu.Unlock()
	for key, want := range acked {
		got, err := c.Get([]byte(key))
		if err != nil {
			t.Fatalf("get %s: %v", key, err)
		}
		if string(got) != want {
			t.Fatalf("key %s: read %q, last acknowledged %q", key, got, want)
		}
	}
	t.Logf("chaos survived: %d keys verified after %d failure rounds", len(acked), rounds)
}

// TestChaosErasureCoded repeats a shorter chaos schedule against an
// erasure-coded group: chunk loss, reconstruction, and coordinator
// failover interacting.
func TestChaosErasureCoded(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run in -short mode")
	}
	cfg := smallConfig()
	cfg.Keys = 256
	cfg.ErasureCoding = true
	cfg.NodeRecoveryInterval = 10 * time.Millisecond
	cl := newTestCluster(t, cfg)
	c := cl.Client()
	c.RetryBudget = 20 * time.Second

	acked := map[string]string{}
	put := func(k, v string) {
		if err := c.Put([]byte(k), []byte(v)); err != nil {
			t.Fatalf("put %s: %v", k, err)
		}
		acked[k] = v
	}

	for i := 0; i < 40; i++ {
		put(fmt.Sprintf("k%d", i%16), fmt.Sprintf("v%d", i))
	}
	victim := cl.MemoryNodes()[0]
	cl.KillMemoryNode(victim)
	for i := 40; i < 80; i++ {
		put(fmt.Sprintf("k%d", i%16), fmt.Sprintf("v%d", i))
	}
	cl.KillCoordinator()
	for i := 80; i < 120; i++ {
		put(fmt.Sprintf("k%d", i%16), fmt.Sprintf("v%d", i))
	}
	cl.RestartMemoryNode(victim)
	if err := cl.AwaitMemoryNodeRecovery(1, 15*time.Second); err != nil {
		t.Fatal(err)
	}
	// Another chunk owner dies; reads now lean on the rebuilt node.
	cl.KillMemoryNode(cl.MemoryNodes()[1])

	for k, want := range acked {
		got, err := c.Get([]byte(k))
		if err != nil {
			t.Fatalf("get %s: %v", k, err)
		}
		if string(got) != want {
			t.Fatalf("key %s: read %q, want %q", k, got, want)
		}
	}
}
