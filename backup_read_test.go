package sift

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/repro/sift/internal/workload"
)

// cpuBudget is a virtual-time core-provisioning limiter for the offload
// benchmark below — the same token-bucket model as internal/bench's
// CPULimiter, restated here because that package imports this one (its
// System wraps Cluster) and cannot be imported back from an internal test.
type cpuBudget struct {
	mu         sync.Mutex
	opInterval time.Duration
	next       time.Time
}

func newCPUBudget(cores int, perOp time.Duration) *cpuBudget {
	return &cpuBudget{opInterval: perOp / time.Duration(cores)}
}

func (l *cpuBudget) charge() {
	const burstSlack = 2 * time.Millisecond
	now := time.Now()
	l.mu.Lock()
	if l.next.Before(now) {
		l.next = now
	}
	l.next = l.next.Add(l.opInterval)
	ahead := l.next.Sub(now)
	l.mu.Unlock()
	if ahead > burstSlack {
		time.Sleep(ahead - burstSlack)
	}
}

// backupConfig is smallConfig with lease-based backup reads enabled and an
// extra CPU node so a follower is always available to serve them.
func backupConfig() Config {
	cfg := smallConfig()
	cfg.BackupReads = true
	cfg.CPUNodes = 3
	return cfg
}

// TestBackupReadsServe verifies that with BackupReads enabled, follower CPU
// nodes actually serve reads under their leases (the served counter moves)
// and that the values they return are correct.
func TestBackupReadsServe(t *testing.T) {
	cl := newTestCluster(t, backupConfig())
	c := cl.Client()

	const keys = 64
	for i := 0; i < keys; i++ {
		k := []byte(fmt.Sprintf("key-%03d", i))
		if err := c.Put(k, []byte(fmt.Sprintf("val-%03d", i))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	// Reads of present keys: every answer must be correct regardless of
	// which path (backup or coordinator) served it.
	deadline := time.Now().Add(5 * time.Second)
	for cl.cm.backupGets.Value() == 0 && time.Now().Before(deadline) {
		for i := 0; i < keys; i++ {
			k := []byte(fmt.Sprintf("key-%03d", i))
			v, err := c.Get(k)
			if err != nil {
				t.Fatalf("get %d: %v", i, err)
			}
			if want := fmt.Sprintf("val-%03d", i); string(v) != want {
				t.Fatalf("get %d: got %q, want %q", i, v, want)
			}
		}
	}
	if cl.cm.backupGets.Value() == 0 {
		t.Fatalf("no reads served by backups (fallbacks=%v leaseRejects=%v)",
			cl.cm.backupFallbacks.Value(), cl.cm.leaseRejects.Value())
	}
	t.Logf("backup reads served=%v fallback=%v no_lease=%v",
		cl.cm.backupGets.Value(), cl.cm.backupFallbacks.Value(), cl.cm.leaseRejects.Value())
}

// TestBackupReadsMissFallsBack: a missing key must surface as ErrNotFound —
// backups cannot prove absence (found-values-only policy), so the answer
// has to come from the coordinator and still be correct.
func TestBackupReadsMissFallsBack(t *testing.T) {
	cl := newTestCluster(t, backupConfig())
	c := cl.Client()
	if err := c.Put([]byte("present"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := c.Get([]byte("absent")); !errors.Is(err, ErrNotFound) {
			t.Fatalf("get absent: %v, want ErrNotFound", err)
		}
	}
	if v, err := c.Get([]byte("present")); err != nil || string(v) != "v" {
		t.Fatalf("get present: %q, %v", v, err)
	}
}

// TestBackupReadsSeeAckedWrites: with SyncApply on the coordinator, a write
// acknowledged to one client must be visible to backup reads issued after
// the ack — read-your-writes through the lease path, checked across many
// rounds so both paths get exercised.
func TestBackupReadsSeeAckedWrites(t *testing.T) {
	cl := newTestCluster(t, backupConfig())
	c := cl.Client()
	key := []byte("rw-key")
	for round := 0; round < 200; round++ {
		want := []byte(fmt.Sprintf("gen-%04d", round))
		if err := c.Put(key, want); err != nil {
			t.Fatalf("round %d put: %v", round, err)
		}
		got, err := c.Get(key)
		if err != nil {
			t.Fatalf("round %d get: %v", round, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("round %d: got %q, want %q (backup served=%v)",
				round, got, want, cl.cm.backupGets.Value())
		}
	}
	t.Logf("200 write-then-read rounds, backup served=%v fallback=%v",
		cl.cm.backupGets.Value(), cl.cm.backupFallbacks.Value())
}

// TestBackupReadsConcurrent hammers the backup path from many goroutines
// while a writer mutates the same keyspace: deletes and overwrites force
// chain mutations under the lock-free walkers, whose CRC/used checks must
// convert every torn read into a silent fallback, never a wrong value.
func TestBackupReadsConcurrent(t *testing.T) {
	cl := newTestCluster(t, backupConfig())

	const keys = 16
	c := cl.Client()
	for i := 0; i < keys; i++ {
		if err := c.Put([]byte(fmt.Sprintf("k%d", i)), []byte("gen-0")); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: overwrite and occasionally delete/recreate
		defer wg.Done()
		w := cl.Client()
		gen := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			gen++
			i := gen % keys
			k := []byte(fmt.Sprintf("k%d", i))
			if gen%7 == 0 {
				if err := w.Delete(k); err != nil {
					t.Errorf("delete: %v", err)
					return
				}
			}
			if err := w.Put(k, []byte(fmt.Sprintf("gen-%d", gen))); err != nil {
				t.Errorf("put: %v", err)
				return
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := cl.Client()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				k := []byte(fmt.Sprintf("k%d", n%keys))
				v, err := r.Get(k)
				if err != nil && !errors.Is(err, ErrNotFound) {
					t.Errorf("reader %d: %v", id, err)
					return
				}
				if err == nil && !bytes.HasPrefix(v, []byte("gen-")) {
					t.Errorf("reader %d: corrupt value %q", id, v)
					return
				}
			}
		}(g)
	}
	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()
	t.Logf("concurrent: backup served=%v fallback=%v no_lease=%v",
		cl.cm.backupGets.Value(), cl.cm.backupFallbacks.Value(), cl.cm.leaseRejects.Value())
}

// BenchmarkReadHeavyBackupOffload measures the aggregate-throughput effect
// of lease-based backup reads under the paper's resource model: each CPU
// node has a fixed per-op CPU budget (as in BenchmarkFigure7), so once the
// coordinator's core saturates, extra throughput can only come from reads
// served elsewhere. A 90%-read workload runs with reads offered to follower
// leases (their ops billed to the follower cores) versus everything on the
// coordinator. The absolute ops/sec depends on the calibrated per-op cost;
// the coordinator-only vs backup-reads gap is the result.
func BenchmarkReadHeavyBackupOffload(b *testing.B) {
	const (
		keys    = 2048
		valSize = 992
		perOp   = 25 * time.Microsecond
	)
	for _, mode := range []struct {
		name   string
		backup bool
	}{{"coordinator-only", false}, {"backup-reads", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := Config{F: 1, CPUNodes: 3, Keys: keys, MaxValueSize: valSize}
			cfg.BackupReads = mode.backup
			cl, err := NewCluster(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			c := cl.Client()
			val := bytes.Repeat([]byte("v"), valSize)
			for i := 0; i < keys; i++ {
				if err := c.Put([]byte(fmt.Sprintf("user%012d", i)), val); err != nil {
					b.Fatal(err)
				}
			}
			coordCPU := newCPUBudget(1, perOp)
			followerCPU := newCPUBudget(cfg.CPUNodes-1, perOp)
			var seq, served atomic.Int64
			b.SetParallelism(8)
			b.ResetTimer()
			start := time.Now()
			b.RunParallel(func(pb *testing.PB) {
				gen := workload.NewGenerator(workload.Config{
					Mix: workload.ReadHeavy, Keys: keys, ValueSize: valSize,
					ZipfTheta: 0.99, Seed: seq.Add(1),
				})
				client := cl.Client()
				for pb.Next() {
					op := gen.Next()
					if op.Read && mode.backup {
						followerCPU.charge()
						if _, ok := cl.backupGet(op.Key); ok {
							served.Add(1)
							continue
						}
					}
					coordCPU.charge()
					if op.Read {
						client.Get(op.Key) //nolint:errcheck
					} else {
						client.Put(op.Key, op.Value) //nolint:errcheck
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "ops/sec")
			if mode.backup {
				b.ReportMetric(100*float64(served.Load())/float64(b.N), "backup-share-%")
			}
		})
	}
}

// TestChaosLinearizeBackupReads is the lease-read safety acceptance test: a
// fleet of instrumented clients (their Gets preferentially served by
// follower leases) runs through a forced coordinator failover, and the
// recorded history must linearize. The failover exercises the full lease
// hand-off: old-term leases expiring, the new coordinator's LeaseWindow
// wait before its first ack, and backups re-anchoring on the new term.
func TestChaosLinearizeBackupReads(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run in -short mode")
	}
	cfg := backupConfig()
	cl := newTestCluster(t, cfg)
	dumpEventsOnFailure(t, cl)
	if err := cl.WaitForCoordinator(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	runLinearizeClients(t, cl, 10, func() {
		time.Sleep(250 * time.Millisecond)
		if _, err := cl.ForceFailover(50, 10*time.Second); err != nil {
			t.Error(err)
		}
		time.Sleep(250 * time.Millisecond)
		if _, err := cl.ForceFailover(51, 10*time.Second); err != nil {
			t.Error(err)
		}
		time.Sleep(250 * time.Millisecond)
	})
	if served := cl.cm.backupGets.Value(); served == 0 {
		t.Errorf("chaos run served no backup reads (fallback=%v no_lease=%v)",
			cl.cm.backupFallbacks.Value(), cl.cm.leaseRejects.Value())
	} else {
		t.Logf("backup reads during chaos: served=%v fallback=%v no_lease=%v",
			served, cl.cm.backupFallbacks.Value(), cl.cm.leaseRejects.Value())
	}
}

// TestChaosLinearizeBackupReadsEC repeats the failover scenario with
// erasure coding, where backup walkers reconstruct every block from k
// chunks and torn mixed-generation reads are a real hazard the block CRC
// must catch.
func TestChaosLinearizeBackupReadsEC(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run in -short mode")
	}
	cfg := backupConfig()
	cfg.ErasureCoding = true
	cl := newTestCluster(t, cfg)
	dumpEventsOnFailure(t, cl)
	if err := cl.WaitForCoordinator(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	runLinearizeClients(t, cl, 10, func() {
		time.Sleep(250 * time.Millisecond)
		if _, err := cl.ForceFailover(50, 10*time.Second); err != nil {
			t.Error(err)
		}
		time.Sleep(400 * time.Millisecond)
	})
}
