GO ?= go

.PHONY: tier1 race bench-pipeline

# Tier-1 verification: everything builds and every test passes.
tier1:
	$(GO) build ./... && $(GO) test ./...

# Race-detector pass over the packages on the write hot path.
race:
	$(GO) test -race ./internal/rdma/... ./internal/repmem/... ./internal/kv/...

# Pipelined-transport throughput benchmark (records EXPERIMENTS.md numbers).
bench-pipeline:
	$(GO) test -run '^$$' -bench BenchmarkPipelinedPut -benchtime 2s .
