GO ?= go

.PHONY: tier1 race chaos linearize reconfig shard wan fuzz-short bench-pipeline bench-ec bench-json bench-baseline bench-gate capacity obs-smoke staticcheck

# Tier-1 verification: everything vets, builds, and every test passes.
tier1:
	$(GO) vet ./... && $(GO) build ./... && $(GO) test ./...

# Race-detector pass over the packages on the write hot path and the
# gray-failure machinery.
race:
	$(GO) test -race ./internal/rdma/... ./internal/repmem/... ./internal/kv/... ./internal/faultrdma/... ./internal/election/...

# Chaos suite: fail-stop and gray-failure schedules against the in-process
# cluster, twice, under the race detector. The 'TestChaos' pattern also
# covers the TestChaosLinearize* scenarios.
chaos: linearize
	$(GO) test -race -count=2 -run 'TestChaos' .

# Linearizability: checker unit tests, client retry regression tests, and
# the chaos linearizability scenarios, under the race detector with a
# bounded duration.
linearize:
	$(GO) test -race -timeout 5m ./internal/linearize/
	$(GO) test -race -timeout 10m -run 'TestRetriable|TestClient|TestAmbiguous|TestNoCoordinatorWithoutSends|TestChaosLinearize' .

# Online reconfiguration suite: the repmem state-transfer/epoch-commit unit
# tests, the elector membership-update test, and the cluster-level rolling
# replacement / fencing / backup-straddle scenarios, under the race detector.
reconfig:
	$(GO) test -race -timeout 5m -run 'TestReplace|TestRestripe|TestMembership|TestConfig' ./internal/repmem/
	$(GO) test -race -run 'TestUpdateMembers' ./internal/election/
	$(GO) test -race -timeout 10m -run 'TestReconfig|TestBackupReadStraddles' .

# Horizontal sharding suite: the rendezvous shard-map unit tests, the
# kv idempotent-batch regression tests, and the cluster-level router /
# fan-out / shared-budget / backup-pool / sharded-chaos scenarios, under
# the race detector.
shard:
	$(GO) test -race -timeout 5m ./internal/shard/ ./internal/backuppool/
	$(GO) test -race -timeout 5m -run 'TestPutBatchIdem' ./internal/kv/
	$(GO) test -race -timeout 10m -run 'TestShard|TestChaosLinearizeSharded' .

# WAN resilience suite: the netsim impairment-model and wantransport FEC
# unit tests, the faultrdma per-class composition tests, and the
# cluster-level WAN scenarios — steady-replica never-suspect and the
# linearizability-checked 5%-loss + failover chaos run — under the race
# detector (DESIGN.md §16).
wan:
	$(GO) test -race -timeout 5m ./internal/netsim/ ./internal/wantransport/
	$(GO) test -race -timeout 5m -run 'TestDropSchedule|TestDelaySchedule|TestCorruptSchedule|TestFaultSchedule' ./internal/faultrdma/
	$(GO) test -race -timeout 10m -run 'TestWAN|TestChaosLinearizeWAN' -v .

# Short fuzz passes: the WAL entry decoder (parses whatever bytes a crashed
# or corrupt memory node holds during recovery) and the word-parallel
# GF(256) kernels (differential against the scalar gfMul reference).
fuzz-short:
	$(GO) test ./internal/wal/ -run '^$$' -fuzz FuzzDecode -fuzztime 30s
	$(GO) test ./internal/erasure/ -run '^$$' -fuzz FuzzGFKernels -fuzztime 30s

# Pipelined-transport throughput benchmark (records EXPERIMENTS.md numbers).
bench-pipeline:
	$(GO) test -run '^$$' -bench BenchmarkPipelinedPut -benchtime 2s .

# Erasure-kernel benchmarks: encode/reconstruct/decode MB/s and allocs at
# 4 KiB / 64 KiB / 1 MiB blocks, plus the repmem steady-state EC paths.
# BENCHTIME=1x (used by CI's race smoke) turns this into a correctness pass.
BENCHTIME ?= 2s
bench-ec:
	$(GO) test $(BENCHFLAGS) -run '^$$' -bench 'BenchmarkEncode|BenchmarkReconstruct|BenchmarkDecode|BenchmarkMulAddSlice' -benchtime $(BENCHTIME) ./internal/erasure/
	$(GO) test $(BENCHFLAGS) -run '^$$' -bench 'BenchmarkECApply|BenchmarkECRead' -benchtime $(BENCHTIME) ./internal/repmem/

# Benchmark trajectory: runs the EC and cluster benchmarks and emits
# BENCH_$(PR).json with encode/reconstruct MB/s, put throughput, read
# latency percentiles, put throughput under rolling node replacement,
# open-loop knee throughput behind the shard router at 1/2/4 groups, WAN
# put throughput/p99 at 0/5/15% sustained loss, and the §17 capacity
# block (knee + latency-at-knee + cost-per-million-ops for the plain,
# sharded, and WAN deployments). Bump PR per PR: `make bench-json PR=11`.
PR ?= 10
bench-json:
	$(GO) run ./cmd/benchjson -pr $(PR)

# Re-anchor the tracked regression baseline after an INTENTIONAL
# performance change: regenerates the benchmark document straight into
# bench-baseline.json (commit the result alongside the change that
# explains it).
bench-baseline:
	$(GO) run ./cmd/benchjson -out bench-baseline.json

# Benchmark regression gate (CI: bench-gate job): a fresh short run
# diffed against the tracked bench-baseline.json with per-metric
# tolerance bands; exits nonzero on regression. Bands are wide (±60%
# default here) because the gate run is short and CI runners are noisy —
# it exists to catch collapses and vanished probes, not 5% drift. The
# knee/throughput metrics carry the signal. Three metric families get
# wider bands still (-tol keys are longest-PREFIX matched against the
# dotted flattened paths): latency-at-knee (a short gate run can land
# its knee at a different rate, and queueing delay at the knee is
# extremely sensitive to that), microsecond-scale read percentiles
# (base ~8µs; one scheduler preemption triples them), and the
# replacement-window probes.
BENCH_GATE_TOL ?= 0.6
bench-gate:
	$(GO) run ./cmd/benchjson -out /tmp/sift-bench-gate.json -duration 700ms
	$(GO) run ./cmd/benchcmp -baseline bench-baseline.json -new /tmp/sift-bench-gate.json \
		-tolerance $(BENCH_GATE_TOL) \
		-tol capacity.plain.p50_ms_at_knee=2.5 -tol capacity.plain.p99_ms_at_knee=4 -tol capacity.plain.p999_ms_at_knee=4 \
		-tol capacity.shard_4g.p50_ms_at_knee=2.5 -tol capacity.shard_4g.p99_ms_at_knee=4 -tol capacity.shard_4g.p999_ms_at_knee=4 \
		-tol capacity.wan_5pct.p50_ms_at_knee=2.5 -tol capacity.wan_5pct.p99_ms_at_knee=4 -tol capacity.wan_5pct.p999_ms_at_knee=4 \
		-tol wan_put_p99_ms=1.5 -tol read_p99_us=4 -tol backup_read_p99_us=4 \
		-tol put_ops_per_sec_during_replace=1.5 -tol replacements_during_probe=1.5 \
		-tol puts_skipped_no_coordinator=20

# Capacity smoke: the open-loop load generator and baseline-comparator
# unit tests (Poisson rate accuracy, stall-as-queue-latency, knee
# detection, regression/tolerance/missing-metric handling) plus a short
# real-cluster sweep, under the race detector (DESIGN.md §17).
capacity:
	$(GO) test -race -timeout 5m -run 'TestPoisson|TestOpenLoop|TestCapacity|TestFlatten|TestCompare' ./internal/bench/...

# Observability smoke: both daemons build, the obs package tests pass, and
# the in-process cluster serves /metrics, /healthz, /statusz, and /events
# with the expected content (TestObsSmoke scrapes them over HTTP).
obs-smoke:
	$(GO) build -o /tmp/sift-obs-smoke-siftd ./cmd/siftd
	$(GO) build -o /tmp/sift-obs-smoke-memnoded ./cmd/memnoded
	$(GO) test ./internal/obs/
	$(GO) test -run 'TestObs' -v .

# Static analysis beyond go vet. Skips gracefully when the staticcheck
# binary is not installed (CI installs it; see .github/workflows/ci.yml).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi
