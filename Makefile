GO ?= go

.PHONY: tier1 race chaos linearize fuzz-short bench-pipeline

# Tier-1 verification: everything vets, builds, and every test passes.
tier1:
	$(GO) vet ./... && $(GO) build ./... && $(GO) test ./...

# Race-detector pass over the packages on the write hot path and the
# gray-failure machinery.
race:
	$(GO) test -race ./internal/rdma/... ./internal/repmem/... ./internal/kv/... ./internal/faultrdma/... ./internal/election/...

# Chaos suite: fail-stop and gray-failure schedules against the in-process
# cluster, twice, under the race detector. The 'TestChaos' pattern also
# covers the TestChaosLinearize* scenarios.
chaos: linearize
	$(GO) test -race -count=2 -run 'TestChaos' .

# Linearizability: checker unit tests, client retry regression tests, and
# the chaos linearizability scenarios, under the race detector with a
# bounded duration.
linearize:
	$(GO) test -race -timeout 5m ./internal/linearize/
	$(GO) test -race -timeout 10m -run 'TestRetriable|TestClient|TestAmbiguous|TestNoCoordinatorWithoutSends|TestChaosLinearize' .

# Short fuzz pass over the WAL entry decoder, which parses whatever bytes a
# crashed or corrupt memory node holds during recovery.
fuzz-short:
	$(GO) test ./internal/wal/ -run '^$$' -fuzz FuzzDecode -fuzztime 30s

# Pipelined-transport throughput benchmark (records EXPERIMENTS.md numbers).
bench-pipeline:
	$(GO) test -run '^$$' -bench BenchmarkPipelinedPut -benchtime 2s .
