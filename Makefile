GO ?= go

.PHONY: tier1 race chaos bench-pipeline

# Tier-1 verification: everything vets, builds, and every test passes.
tier1:
	$(GO) vet ./... && $(GO) build ./... && $(GO) test ./...

# Race-detector pass over the packages on the write hot path and the
# gray-failure machinery.
race:
	$(GO) test -race ./internal/rdma/... ./internal/repmem/... ./internal/kv/... ./internal/faultrdma/... ./internal/election/...

# Chaos suite: fail-stop and gray-failure schedules against the in-process
# cluster, twice, under the race detector.
chaos:
	$(GO) test -race -count=2 -run 'TestChaos' .

# Pipelined-transport throughput benchmark (records EXPERIMENTS.md numbers).
bench-pipeline:
	$(GO) test -run '^$$' -bench BenchmarkPipelinedPut -benchtime 2s .
